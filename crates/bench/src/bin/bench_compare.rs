//! CLI front-end for the benchmark regression gate (see
//! [`dwm_bench::gate`]).
//!
//! ```text
//! bench_compare [--threshold F] [--write-baseline]
//!               [--pair NUM DEN]... [--pair-threshold F]
//!               [--min-speedup NUM DEN RATIO]...
//!               [--p99-tail PREFIX FACTOR]...
//!               [--summary-json DIR]
//!               <baseline.json> <report>...
//! ```
//!
//! Each `<report>` is a suite JSON written by the harness
//! (`DWM_BENCH_JSON`), or a directory of them. Normal mode compares the
//! reports against the baseline and exits non-zero when any benchmark's
//! minimum iteration time regressed beyond the threshold (default 0.25
//! = 25%; see [`dwm_bench::gate`] for why minima, not medians).
//! `--write-baseline` instead (re)writes `<baseline.json>` from the
//! reports — run it after intentional performance changes and commit
//! the file.
//!
//! `--pair NUM DEN` additionally bounds the ratio of two *minimum*
//! iteration times from the *current* run (`NUM / DEN ≤ 1 +
//! pair-threshold`, default 0.05). Because both sides ran on the same
//! machine seconds apart — and minima filter scheduler noise that
//! swings medians — this holds a much tighter bound than the baseline
//! gate; it is how CI proves observability costs < 5%. Pairs are
//! checked in both normal and `--write-baseline` mode.
//!
//! `--min-speedup NUM DEN RATIO` is the same same-run minima ratio
//! pointed the other way: it *fails unless* `NUM / DEN ≥ RATIO`. CI
//! uses it to enforce that an optimized kernel actually keeps its
//! speedup over the scalar reference it is benched against (e.g. the
//! batched local-search path must stay ≥ 2× its scalar twin).
//!
//! `--p99-tail PREFIX FACTOR` bounds *tail latency* for every
//! benchmark id under `PREFIX` in the current run: each one's
//! `p99_ns` must stay within `FACTOR` times its own median. Like the
//! pair bounds this is a same-run statistic — machine drift scales
//! p99 and median together, so the ratio is stable across boxes,
//! while an event-loop pathology (a lost wakeup, a convoy behind the
//! accept path) inflates the p99 by orders of magnitude over the
//! median. CI points this at `serve/` so the request-latency tail is
//! gated, not just the best case. It is an error if no id matches the
//! prefix. Checked in both normal and `--write-baseline` mode.
//!
//! `--summary-json DIR` additionally writes this run's entries as a
//! perf-trajectory snapshot `DIR/BENCH_<n>.json` (`n` = one past the
//! highest existing snapshot; same schema as the baseline file), so a
//! CI history of runs accumulates into a diffable performance record.

use std::path::Path;
use std::process::ExitCode;

use dwm_bench::gate::{self, Entry};

fn usage() -> ! {
    eprintln!(
        "usage: bench_compare [--threshold F] [--write-baseline] \
         [--pair NUM DEN]... [--pair-threshold F] \
         [--min-speedup NUM DEN RATIO]... [--p99-tail PREFIX FACTOR]... \
         [--summary-json DIR] <baseline.json> <report>..."
    );
    std::process::exit(2);
}

fn collect_reports(paths: &[String]) -> Result<Vec<Entry>, String> {
    let mut files: Vec<String> = Vec::new();
    for p in paths {
        if Path::new(p).is_dir() {
            let mut in_dir: Vec<String> = std::fs::read_dir(p)
                .map_err(|e| format!("{p}: {e}"))?
                .filter_map(|entry| entry.ok())
                .map(|entry| entry.path().to_string_lossy().into_owned())
                .filter(|name| name.ends_with(".json"))
                .collect();
            in_dir.sort();
            if in_dir.is_empty() {
                return Err(format!("{p}: no .json reports in directory"));
            }
            files.extend(in_dir);
        } else {
            files.push(p.clone());
        }
    }
    let mut entries = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
        entries.extend(gate::parse_suite_report(&text).map_err(|e| format!("{file}: {e}"))?);
    }
    Ok(entries)
}

/// Checks every `--min-speedup` floor against the current run;
/// returns whether all held.
fn check_speedups(current: &[Entry], floors: &[(String, String, f64)]) -> Result<bool, String> {
    let mut ok = true;
    for (num, den, floor) in floors {
        let ratio = gate::pair_ratio(current, num, den)?;
        let failed = ratio < *floor;
        println!(
            "speedup {num} / {den} = {ratio:.2}x (floor {floor:.2}x){}",
            if failed { "  BELOW FLOOR" } else { "" }
        );
        ok &= !failed;
    }
    Ok(ok)
}

/// Writes this run's entries as `DIR/BENCH_<n>.json`, `n` one past
/// the highest existing snapshot index.
fn write_summary(dir: &str, current: &[Entry]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let next = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            name.strip_prefix("BENCH_")?
                .strip_suffix(".json")?
                .parse::<u64>()
                .ok()
        })
        .max()
        .map_or(1, |n| n + 1);
    let path = format!("{dir}/BENCH_{next}.json");
    std::fs::write(&path, gate::baseline_json(current)).map_err(|e| format!("{path}: {e}"))?;
    println!("summary snapshot: {path} ({} entries)", current.len());
    Ok(())
}

/// Checks every `--p99-tail` bound against the current run; returns
/// whether all held.
fn check_tails(current: &[Entry], tails: &[(String, f64)]) -> Result<bool, String> {
    let mut ok = true;
    for (prefix, factor) in tails {
        for check in gate::p99_tail_checks(current, prefix)? {
            let failed = check.exceeded(*factor);
            println!(
                "p99 tail {:<44} {:>11.0} ns over median {:>11.0} ns = {:>6.2}x \
                 (bound {factor:.0}x){}",
                check.id,
                check.p99_ns,
                check.median_ns,
                check.ratio(),
                if failed { "  EXCEEDED" } else { "" }
            );
            ok &= !failed;
        }
    }
    Ok(ok)
}

/// Checks every `--pair` bound against the current run; returns
/// whether all held.
fn check_pairs(
    current: &[Entry],
    pairs: &[(String, String)],
    threshold: f64,
) -> Result<bool, String> {
    let mut ok = true;
    for (num, den) in pairs {
        let ratio = gate::pair_ratio(current, num, den)?;
        let failed = ratio > 1.0 + threshold;
        println!(
            "pair {num} / {den} = {ratio:.3}x (bound {:.3}x){}",
            1.0 + threshold,
            if failed { "  EXCEEDED" } else { "" }
        );
        ok &= !failed;
    }
    Ok(ok)
}

fn run() -> Result<bool, String> {
    let mut threshold = 0.25f64;
    let mut pair_threshold = 0.05f64;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut speedups: Vec<(String, String, f64)> = Vec::new();
    let mut tails: Vec<(String, f64)> = Vec::new();
    let mut summary_dir: Option<String> = None;
    let mut write_baseline = false;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().unwrap_or_else(|| usage());
                threshold = v.parse().map_err(|_| format!("invalid threshold '{v}'"))?;
            }
            "--pair" => {
                let num = args.next().unwrap_or_else(|| usage());
                let den = args.next().unwrap_or_else(|| usage());
                pairs.push((num, den));
            }
            "--min-speedup" => {
                let num = args.next().unwrap_or_else(|| usage());
                let den = args.next().unwrap_or_else(|| usage());
                let v = args.next().unwrap_or_else(|| usage());
                let floor = v
                    .parse()
                    .map_err(|_| format!("invalid speedup floor '{v}'"))?;
                speedups.push((num, den, floor));
            }
            "--p99-tail" => {
                let prefix = args.next().unwrap_or_else(|| usage());
                let v = args.next().unwrap_or_else(|| usage());
                let factor = v
                    .parse()
                    .map_err(|_| format!("invalid p99 tail factor '{v}'"))?;
                tails.push((prefix, factor));
            }
            "--summary-json" => {
                summary_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--pair-threshold" => {
                let v = args.next().unwrap_or_else(|| usage());
                pair_threshold = v
                    .parse()
                    .map_err(|_| format!("invalid pair threshold '{v}'"))?;
            }
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => positional.push(arg),
        }
    }
    if positional.len() < 2 {
        usage();
    }
    let baseline_path = positional.remove(0);
    let current = collect_reports(&positional)?;
    if let Some(dir) = &summary_dir {
        write_summary(dir, &current)?;
    }

    if write_baseline {
        std::fs::write(&baseline_path, gate::baseline_json(&current))
            .map_err(|e| format!("{baseline_path}: {e}"))?;
        println!(
            "wrote {} entr{} to {baseline_path}",
            current.len(),
            if current.len() == 1 { "y" } else { "ies" }
        );
        let pairs_ok = check_pairs(&current, &pairs, pair_threshold)?;
        let speedups_ok = check_speedups(&current, &speedups)?;
        let tails_ok = check_tails(&current, &tails)?;
        return Ok(pairs_ok && speedups_ok && tails_ok);
    }

    let text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("{baseline_path}: {e} (run with --write-baseline first?)"))?;
    let baseline = gate::parse_baseline(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let report = gate::compare(&baseline, &current);

    println!(
        "{:<52} {:>14} {:>14} {:>8}",
        "benchmark", "baseline", "current", "ratio"
    );
    for c in &report.comparisons {
        println!(
            "{:<52} {:>11.0} ns {:>11.0} ns {:>7.2}x{}",
            c.id,
            c.baseline_ns,
            c.current_ns,
            c.ratio(),
            if c.regressed(threshold) {
                "  REGRESSED"
            } else {
                ""
            }
        );
    }
    for id in &report.missing {
        eprintln!("warning: baseline id '{id}' missing from current run (re-baseline?)");
    }
    for id in &report.added {
        eprintln!("warning: new benchmark '{id}' not in baseline (re-baseline to track)");
    }
    let pairs_ok = check_pairs(&current, &pairs, pair_threshold)?;
    let speedups_ok = check_speedups(&current, &speedups)?;
    let tails_ok = check_tails(&current, &tails)?;
    let regressions = report.regressions(threshold);
    if regressions.is_empty() && pairs_ok && speedups_ok && tails_ok {
        println!(
            "gate OK: {} benchmark(s) within {:.0}% of baseline",
            report.comparisons.len(),
            threshold * 100.0
        );
        Ok(true)
    } else {
        if !regressions.is_empty() {
            eprintln!(
                "gate FAILED: {} benchmark(s) regressed more than {:.0}%",
                regressions.len(),
                threshold * 100.0
            );
        }
        if !pairs_ok {
            eprintln!(
                "gate FAILED: pair ratio(s) exceeded {:.0}% bound",
                pair_threshold * 100.0
            );
        }
        if !speedups_ok {
            eprintln!("gate FAILED: speedup floor(s) not met");
        }
        if !tails_ok {
            eprintln!("gate FAILED: p99 tail bound(s) exceeded");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}
