use std::collections::VecDeque;

use dwm_graph::{AccessGraph, Edge};

use crate::algorithms::frequency::OrganPipe;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Adjacency-driven greedy chain merging.
///
/// The core of the proposed placement family: process access-graph
/// edges in descending weight order; an edge joins its two endpoints'
/// chains end-to-end whenever both endpoints are chain *ends* of
/// different chains. The result is a set of chains in which heavily
/// co-accessed items sit next to each other — exactly what a
/// single-port tape wants, since consecutive accesses then cost one
/// shift. Remaining chains are concatenated in descending total-weight
/// order.
///
/// This is the greedy-matching construction for weighted Hamiltonian
/// path / minimum linear arrangement, running in `O(E log E)` with
/// union-find-style chain bookkeeping.
///
/// # Example
///
/// ```
/// use dwm_graph::AccessGraph;
/// use dwm_core::{ChainGrowth, PlacementAlgorithm};
///
/// let mut g = AccessGraph::with_items(3);
/// g.add_weight(0, 2, 10); // hot pair
/// g.add_weight(0, 1, 1);
/// let p = ChainGrowth::default().place(&g);
/// // Hot pair ends up adjacent on the tape.
/// let d = (p.offset_of(0) as i64 - p.offset_of(2) as i64).abs();
/// assert_eq!(d, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainGrowth;

/// The chains produced by greedy edge merging, before final ordering.
#[derive(Debug, Clone)]
pub(crate) struct Chains {
    /// Each chain as an ordered item list.
    pub chains: Vec<VecDeque<usize>>,
}

pub(crate) fn grow_chains(graph: &AccessGraph) -> Chains {
    let n = graph.num_items();
    // chain_of[v] = index of the chain containing v, or usize::MAX.
    let mut chain_of = vec![usize::MAX; n];
    let mut chains: Vec<Option<VecDeque<usize>>> = Vec::new();

    let mut edges: Vec<Edge> = graph.edges().collect();
    // Heaviest first; ties in (u, v) lexicographic order for
    // reproducibility.
    edges.sort_by_key(|e| (std::cmp::Reverse(e.weight), e.u, e.v));

    let is_end = |chains: &[Option<VecDeque<usize>>], chain_of: &[usize], v: usize| -> bool {
        match chain_of[v] {
            usize::MAX => true, // singleton: trivially an end
            c => {
                let chain = chains[c].as_ref().expect("live chain");
                *chain.front().unwrap() == v || *chain.back().unwrap() == v
            }
        }
    };

    for e in edges {
        let (u, v) = (e.u, e.v);
        let cu = chain_of[u];
        let cv = chain_of[v];
        if cu != usize::MAX && cu == cv {
            continue; // already in the same chain
        }
        if !is_end(&chains, &chain_of, u) || !is_end(&chains, &chain_of, v) {
            continue; // one endpoint is interior: cannot join
        }
        // Materialize both sides as chains (singletons become chains).
        let mut left = match cu {
            usize::MAX => VecDeque::from([u]),
            c => chains[c].take().expect("live chain"),
        };
        let mut right = match cv {
            usize::MAX => VecDeque::from([v]),
            c => chains[c].take().expect("live chain"),
        };
        // Orient so `left` ends with u and `right` starts with v.
        if *left.back().unwrap() != u {
            left = left.into_iter().rev().collect();
        }
        if *right.front().unwrap() != v {
            right = right.into_iter().rev().collect();
        }
        left.extend(right);
        let idx = chains.len();
        for &x in &left {
            chain_of[x] = idx;
        }
        chains.push(Some(left));
    }

    // Collect live chains plus leftover singletons, preserving a
    // deterministic order.
    let mut out: Vec<VecDeque<usize>> = chains.into_iter().flatten().collect();
    for (v, &chain) in chain_of.iter().enumerate().take(n) {
        if chain == usize::MAX {
            out.push(VecDeque::from([v]));
        }
    }
    Chains { chains: out }
}

/// Total access frequency of a chain (for ordering).
fn chain_weight(graph: &AccessGraph, chain: &VecDeque<usize>) -> u64 {
    chain.iter().map(|&v| graph.frequency(v)).sum()
}

impl PlacementAlgorithm for ChainGrowth {
    fn name(&self) -> String {
        "chain".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut chains = grow_chains(graph).chains;
        // Concatenate heaviest-first (hot chains near the port end).
        chains.sort_by_key(|c| {
            (
                std::cmp::Reverse(chain_weight(graph, c)),
                c.front().copied().unwrap_or(0),
            )
        });
        let order: Vec<usize> = chains.into_iter().flatten().collect();
        Placement::from_order(order)
    }
}

/// The full proposed algorithm: chain growth followed by
/// frequency-anchored (organ-pipe) ordering *of the chains*.
///
/// Plain [`ChainGrowth`] concatenates chains heaviest-first, which
/// leaves a hot chain at one end of the tape far from cold chains it
/// still occasionally talks to. `GroupedChainGrowth` instead arranges
/// whole chains in an organ-pipe profile — the hottest chain in the
/// middle, cooler chains alternating outward — and then greedily
/// orients each chain to maximize the junction weight with its already-
/// placed neighbour. This combines the adjacency win (hot pairs
/// adjacent) with the frequency win (hot *groups* central).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupedChainGrowth;

impl PlacementAlgorithm for GroupedChainGrowth {
    fn name(&self) -> String {
        "grouped-chain".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut chains = grow_chains(graph).chains;
        // Sort chains by descending weight, then arrange in organ-pipe
        // profile at chain granularity.
        chains.sort_by_key(|c| {
            (
                std::cmp::Reverse(chain_weight(graph, c)),
                c.front().copied().unwrap_or(0),
            )
        });
        let piped = OrganPipe::pipe_order(chains);

        // Concatenate, flipping each chain if that strengthens the
        // junction with the previously placed item.
        let mut order: Vec<usize> = Vec::with_capacity(graph.num_items());
        for chain in piped {
            if let Some(&prev) = order.last() {
                let front = *chain.front().expect("chains are nonempty");
                let back = *chain.back().expect("chains are nonempty");
                let keep = graph.weight(prev, front);
                let flip = graph.weight(prev, back);
                if flip > keep {
                    order.extend(chain.into_iter().rev());
                    continue;
                }
            }
            order.extend(chain);
        }
        Placement::from_order(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};

    #[test]
    fn chains_keep_heavy_edges_adjacent() {
        let g = two_cluster_graph();
        for alg in [&ChainGrowth as &dyn PlacementAlgorithm, &GroupedChainGrowth] {
            let p = alg.place(&g);
            // The lone inter-cluster edge (2,3) is light; the heavy
            // intra-cluster structure must dominate: each cluster's
            // items occupy three consecutive offsets.
            let c1: Vec<usize> = (0..3).map(|i| p.offset_of(i)).collect();
            let c2: Vec<usize> = (3..6).map(|i| p.offset_of(i)).collect();
            let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
            assert_eq!(spread(&c1), 2, "{} scattered cluster 1", alg.name());
            assert_eq!(spread(&c2), 2, "{} scattered cluster 2", alg.name());
        }
    }

    #[test]
    fn grow_chains_covers_every_item_once() {
        let g = kernel_graph();
        let chains = grow_chains(&g).chains;
        let mut seen = vec![false; g.num_items()];
        for c in &chains {
            for &v in c {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chain_growth_beats_naive_on_kernel_graph() {
        let g = kernel_graph();
        let naive = g.arrangement_cost(Placement::identity(g.num_items()).offsets());
        let chain = g.arrangement_cost(ChainGrowth.place(&g).offsets());
        let grouped = g.arrangement_cost(GroupedChainGrowth.place(&g).offsets());
        assert!(chain <= naive);
        assert!(grouped <= naive);
    }

    #[test]
    fn edgeless_graph_yields_identity_like_order() {
        let g = AccessGraph::with_items(4);
        let p = ChainGrowth.place(&g);
        assert_eq!(p.num_items(), 4);
        let p = GroupedChainGrowth.place(&g);
        assert_eq!(p.num_items(), 4);
    }

    #[test]
    fn single_heavy_edge_is_adjacent() {
        let mut g = AccessGraph::with_items(8);
        g.add_weight(1, 6, 100);
        g.add_weight(0, 7, 1);
        let p = GroupedChainGrowth.place(&g);
        assert_eq!(
            (p.offset_of(1) as i64 - p.offset_of(6) as i64).abs(),
            1,
            "heavy pair must be adjacent"
        );
    }

    #[test]
    fn deterministic_output() {
        let g = kernel_graph();
        assert_eq!(ChainGrowth.place(&g), ChainGrowth.place(&g));
        assert_eq!(GroupedChainGrowth.place(&g), GroupedChainGrowth.place(&g));
    }
}
