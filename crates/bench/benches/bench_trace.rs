//! Profile-driven trace synthesis benchmarks.
//!
//! The S21 pipeline's two throughput claims: profiling is a cheap
//! single pass (`trace/profile_1M`), and a profile replays at 10⁸
//! accesses in `O(items)` memory at generator speed
//! (`trace/synth_100M` — the headline scale point, ~10 s per
//! iteration, so `bench_gate.sh` runs this suite with few samples).
//! `trace/synth_1M` tracks per-access cost where regressions are
//! cheap to bisect.

use dwm_bench::markov_fixture;
use dwm_foundation::bench::{black_box, Harness};
use dwm_trace::profile::{ProfileBuilder, TraceProfile};
use dwm_trace::synth::ProfiledGen;

/// Drains a stream, returning a checksum the optimizer cannot elide.
fn drain(gen: &ProfiledGen, len: u64) -> u64 {
    let mut acc = 0u64;
    for access in gen.stream(len) {
        acc ^= u64::from(access.item.0);
    }
    acc
}

fn main() {
    let mut h = Harness::from_env("trace");

    let (trace, _) = markov_fixture(128);
    let profile = TraceProfile::from_trace(&trace);
    let gen = ProfiledGen::new(profile.clone(), 1);

    // Single-pass profiling throughput over a streamed 1M-access
    // replay: the builder is the only O(items) state.
    h.bench("trace/profile_1M", || {
        let mut builder = ProfileBuilder::new("bench", 4096);
        for access in gen.stream(1_000_000) {
            builder.push(access);
        }
        black_box(builder.finish().items)
    });

    h.bench("trace/synth_1M", || black_box(drain(&gen, 1_000_000)));

    // The headline: 10⁸ accesses streamed from a few-KB profile.
    h.bench("trace/synth_100M", || black_box(drain(&gen, 100_000_000)));

    h.finish();
}
