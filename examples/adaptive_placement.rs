//! Online placement on a phase-changing workload.
//!
//! Constructs a workload whose hot clusters rotate every few thousand
//! accesses and compares static placements against the windowed
//! adaptive placer (which pays explicit migration shifts).
//!
//! ```text
//! cargo run --release --example adaptive_placement
//! ```

use dwm_placement::core::online::{OnlineConfig, OnlinePlacer};
use dwm_placement::prelude::*;

fn main() {
    // Three phases, each a clustered walk over a different shuffle of
    // 48 items.
    let mut ids = Vec::new();
    for phase in 0..3u64 {
        let t = MarkovGen::new(48, 6, phase).with_stay(0.95).generate(6000);
        let stride = 2 * phase as usize + 1;
        ids.extend(
            t.iter()
                .map(|a| ((a.item.index() * stride + 5) % 48) as u32),
        );
    }
    let trace = Trace::from_ids(ids);
    println!("workload: {}\n", trace.stats());

    let model = SinglePortCost::new();
    let naive = model
        .trace_cost(&Placement::identity(trace.num_items()), &trace)
        .stats
        .shifts;
    let oracle = model
        .trace_cost(
            &Hybrid::default().place(&AccessGraph::from_trace(&trace)),
            &trace,
        )
        .stats
        .shifts;
    let report = OnlinePlacer::new(OnlineConfig {
        window: 1500,
        migration_shifts_per_item: 48,
        ..OnlineConfig::default()
    })
    .run(&trace);

    println!("static-naive : {naive} shifts");
    println!(
        "static-oracle: {oracle} shifts ({:.1}% better than naive)",
        100.0 * (naive - oracle) as f64 / naive as f64
    );
    println!(
        "online       : {} shifts = {} access + {} migration ({:.1}% better than naive, {} adaptations)",
        report.total_shifts(),
        report.access_shifts,
        report.migration_shifts,
        100.0 * (naive as f64 - report.total_shifts() as f64) / naive as f64,
        report.migrations
    );
}
