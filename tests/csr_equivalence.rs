//! CSR-rewire equivalence: the frozen-graph fast paths must be a pure
//! representation change.
//!
//! Every solver's output is pinned to a golden FNV-1a hash of its
//! serialized placement, captured from the pre-CSR `BTreeMap`
//! adjacency implementation. The hashes must stay identical after the
//! rewire onto `CsrGraph` / `ArrangementEval` — any drift means a
//! heuristic changed, not just its data layout. Each artifact is also
//! required to be byte-identical at `DWM_THREADS=1` and `=8`, so the
//! frozen-graph paths keep the pool-size-invariance contract of
//! `tests/parallel.rs`.
//!
//! Regenerating (only after an *intentional* heuristic change): run
//! with `DWM_GOLDEN_PRINT=1` and paste the printed table.

use std::sync::Mutex;

use dwm_placement::core::algorithms::TraceRefiner;
use dwm_placement::core::cost::CostModel;
use dwm_placement::core::online::{OnlineConfig, OnlinePlacer};
use dwm_placement::core::partition::{Objective, Partitioner};
use dwm_placement::graph::generators::{clustered_graph, random_graph};
use dwm_placement::prelude::*;
use dwm_placement::trace::kernels::Kernel;
use dwm_placement::trace::synth::{MarkovGen, TraceGenerator};

/// `DWM_THREADS` is process-global; tests that flip it must not
/// interleave (mirrors `tests/parallel.rs`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("DWM_THREADS", threads.to_string());
    let result = f();
    std::env::remove_var("DWM_THREADS");
    result
}

/// FNV-1a, 64-bit: stable across platforms and Rust versions.
fn fnv64(text: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn json(p: &Placement) -> String {
    dwm_foundation::json::to_string(p)
}

/// Every solver and refiner the CSR rewire touches, as (name, artifact)
/// pairs. Deterministic: all inputs are seeded.
fn artifacts() -> Vec<(&'static str, String)> {
    let mut out: Vec<(&'static str, String)> = Vec::new();

    let markov = MarkovGen::new(96, 12, 0xBEEC).generate(1920).normalize();
    let mg = AccessGraph::from_trace(&markov);
    let rg = random_graph(40, 0.3, 6, 7);
    let cg = clustered_graph(36, 6, 0.85, 0.1, 8, 5);

    // Constructive algorithms on the Markov-clustered graph.
    out.push(("chain", json(&ChainGrowth.place(&mg))));
    out.push(("grouped-chain", json(&GroupedChainGrowth.place(&mg))));
    out.push(("organ-pipe", json(&OrganPipe.place(&mg))));
    out.push(("spectral", json(&Spectral::default().place(&mg))));
    out.push(("insertion", json(&GreedyInsertion.place(&mg))));
    out.push(("insertion/random", json(&GreedyInsertion.place(&rg))));

    // Stochastic / refining algorithms.
    out.push((
        "annealing",
        json(&SimulatedAnnealing::new(11).with_iterations(4000).place(&rg)),
    ));
    out.push(("local-search", {
        let mut p = RandomPlacement::new(3).place(&mg);
        let saved = LocalSearch::default().refine(&mg, &mut p);
        format!("{} saved={saved}", json(&p))
    }));
    // The scalar reference kernel must stay byte-identical to the
    // profile-cached path above (same golden hash): kernel choice is a
    // performance decision, never a behavioral one.
    out.push(("local-search/scalar", {
        let csr = CsrGraph::freeze(&mg);
        let mut p = RandomPlacement::new(3).place(&mg);
        let saved = LocalSearch::default().refine_frozen_scalar(&csr, &mut p);
        format!("{} saved={saved}", json(&p))
    }));
    out.push(("window-dp", {
        let mut p = RandomPlacement::new(5).place(&rg);
        let saved = WindowedDp::default().refine(&rg, &mut p);
        format!("{} saved={saved}", json(&p))
    }));
    out.push(("hybrid", json(&Hybrid::default().place(&mg))));
    out.push(("multi-start", json(&MultiStart::new(3, 9).place(&cg))));

    // Exact solvers.
    let xg = random_graph(12, 0.5, 8, 0xD15C);
    let (dp, dp_cost) = optimal_placement(&xg).expect("solvable");
    out.push(("exact-dp", format!("{} cost={dp_cost}", json(&dp))));
    let (bb, bb_cost) = branch_and_bound_placement(&xg).expect("solvable");
    out.push(("exact-bb", format!("{} cost={bb_cost}", json(&bb))));

    // Partitioning (KL swap refinement) under both objectives.
    for (name, objective) in [
        ("partition/min-external", Objective::MinimizeExternal),
        ("partition/min-internal", Objective::MinimizeInternal),
    ] {
        let part = Partitioner::new(6, 6)
            .with_objective(objective)
            .partition(&cg)
            .expect("fits");
        out.push((name, dwm_foundation::json::to_string(&part)));
    }

    // Trace-replaying paths.
    let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
    let tg = AccessGraph::from_trace(&trace);
    out.push(("trace-refine", {
        let model = MultiPortCost::evenly_spaced(4, tg.num_items());
        let mut p = Hybrid::default().place(&tg);
        let saved = TraceRefiner::default().refine(&model, &trace, &mut p);
        let cost = model.trace_cost(&p, &trace).stats.shifts;
        format!("{} saved={saved} cost={cost}", json(&p))
    }));
    out.push(("online", {
        let report = OnlinePlacer::new(OnlineConfig {
            window: 256,
            migration_shifts_per_item: 8,
            ..OnlineConfig::default()
        })
        .run(&trace);
        format!(
            "{} total={} migrations={}",
            json(&report.final_placement),
            report.total_shifts(),
            report.migrations
        )
    }));

    out
}

/// Golden hashes captured from the pre-CSR implementation (seed commit
/// lineage: `BTreeMap` adjacency walks in every inner loop).
const GOLDEN: &[(&str, u64)] = &[
    ("chain", 0x80f36887b38c46ab),
    ("grouped-chain", 0x502b02a2bc62637f),
    ("organ-pipe", 0x0836ef7699767899),
    ("spectral", 0xe4c04ccd70b78571),
    ("insertion", 0x8a196729f003c8f9),
    ("insertion/random", 0x215c842e03a9c1db),
    ("annealing", 0x9dd3eefbf441267b),
    ("local-search", 0xd19e48e414ca72e8),
    ("local-search/scalar", 0xd19e48e414ca72e8),
    ("window-dp", 0xa5227ffb3dfc8772),
    ("hybrid", 0xe8c1d4aaee982cbd),
    ("multi-start", 0x3a2b9f3e2c421b0b),
    ("exact-dp", 0x45772a1f9c973cf9),
    ("exact-bb", 0x45772a1f9c973cf9),
    ("partition/min-external", 0xb2470907221af344),
    ("partition/min-internal", 0xa12b05815425fdca),
    ("trace-refine", 0xaf7b203006eb557e),
    ("online", 0xc2658920fa120cc6),
];

fn check_against_golden(label: &str) {
    let actual = artifacts();
    if std::env::var("DWM_GOLDEN_PRINT").is_ok() {
        for (name, text) in &actual {
            println!("    (\"{name}\", 0x{:016x}),", fnv64(text));
        }
    }
    assert_eq!(actual.len(), GOLDEN.len(), "artifact roster drifted");
    for ((name, text), (gname, ghash)) in actual.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "artifact roster order drifted");
        assert_eq!(
            fnv64(text),
            *ghash,
            "{label}: '{name}' diverged from the pre-CSR golden placement \
             (rerun with DWM_GOLDEN_PRINT=1 only for intentional heuristic changes)"
        );
    }
}

#[test]
fn solver_outputs_match_pre_csr_goldens_at_1_thread() {
    let _guard = ENV_LOCK.lock().unwrap();
    with_threads(1, || check_against_golden("DWM_THREADS=1"));
}

#[test]
fn solver_outputs_match_pre_csr_goldens_at_8_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    with_threads(8, || check_against_golden("DWM_THREADS=8"));
}
