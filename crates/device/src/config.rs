use crate::error::DeviceError;
use crate::port::PortLayout;

/// Timing parameters of the device, in controller clock cycles.
///
/// The defaults follow the parameters commonly used in the 2013–2015
/// racetrack-memory literature (≈ 2 GHz controller clock, one cycle per
/// single-domain shift, SRAM-like port access latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingConfig {
    /// Cycles to shift the tape by one domain position.
    pub shift_cycles: u64,
    /// Cycles for a read through an aligned port.
    pub read_cycles: u64,
    /// Cycles for a write through an aligned port.
    pub write_cycles: u64,
    /// Controller clock period in nanoseconds (for latency projection).
    pub clock_ns: f64,
}

dwm_foundation::json_struct!(TimingConfig {
    shift_cycles,
    read_cycles,
    write_cycles,
    clock_ns
});

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            shift_cycles: 1,
            read_cycles: 2,
            write_cycles: 2,
            clock_ns: 0.5,
        }
    }
}

/// Energy parameters of the device, in picojoules.
///
/// `shift_pj_per_track` is charged once per track per single-domain
/// shift; a DBC-level shift of distance `d` on a `W`-track cluster
/// therefore costs `d * W * shift_pj_per_track`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyConfig {
    /// Energy to shift one track by one domain, in pJ.
    pub shift_pj_per_track: f64,
    /// Energy of one word read through an aligned port, in pJ.
    pub read_pj: f64,
    /// Energy of one word write through an aligned port, in pJ.
    pub write_pj: f64,
    /// Static leakage power in milliwatts (for energy projection over a
    /// simulated interval).
    pub leakage_mw: f64,
}

dwm_foundation::json_struct!(EnergyConfig {
    shift_pj_per_track,
    read_pj,
    write_pj,
    leakage_mw
});

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            shift_pj_per_track: 0.02,
            read_pj: 0.5,
            write_pj: 0.7,
            leakage_mw: 0.1,
        }
    }
}

/// Validated geometry, timing, and energy description of a DWM array.
///
/// Construct with [`DeviceConfig::builder`]; the builder validates all
/// cross-parameter constraints (ports ≤ domains, nonzero sizes, word
/// width ≤ 64) so that a `DeviceConfig` in hand is always usable.
///
/// # Example
///
/// ```
/// use dwm_device::DeviceConfig;
///
/// let config = DeviceConfig::builder()
///     .domains_per_track(64)
///     .tracks_per_dbc(32)
///     .ports(2)
///     .build()?;
/// assert_eq!(config.words_per_dbc(), 64);
/// assert_eq!(config.port_layout().len(), 2);
/// # Ok::<(), dwm_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    domains_per_track: usize,
    tracks_per_dbc: usize,
    ports: PortLayout,
    dbcs: usize,
    timing: TimingConfig,
    energy: EnergyConfig,
}

dwm_foundation::json_struct!(DeviceConfig {
    domains_per_track,
    tracks_per_dbc,
    ports,
    dbcs,
    timing,
    energy
});

impl DeviceConfig {
    /// Starts building a configuration from the literature defaults.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::new()
    }

    /// Number of data domains per track (`L`). Equals the number of
    /// addressable words per DBC.
    pub fn domains_per_track(&self) -> usize {
        self.domains_per_track
    }

    /// Number of tracks ganged into one DBC (`W`), i.e. the word width
    /// in bits.
    pub fn tracks_per_dbc(&self) -> usize {
        self.tracks_per_dbc
    }

    /// Number of addressable words in one DBC (alias for
    /// [`domains_per_track`](Self::domains_per_track)).
    pub fn words_per_dbc(&self) -> usize {
        self.domains_per_track
    }

    /// Number of DBCs in the array (scratchpad capacity =
    /// `dbcs * words_per_dbc` words).
    pub fn dbcs(&self) -> usize {
        self.dbcs
    }

    /// Total addressable words across all DBCs.
    pub fn capacity_words(&self) -> usize {
        self.dbcs * self.domains_per_track
    }

    /// The access-port layout shared by every DBC.
    pub fn port_layout(&self) -> &PortLayout {
        &self.ports
    }

    /// Timing parameters.
    pub fn timing(&self) -> &TimingConfig {
        &self.timing
    }

    /// Energy parameters.
    pub fn energy(&self) -> &EnergyConfig {
        &self.energy
    }

    /// Number of *padding* domains each track needs beyond the data
    /// region so every word can reach every port.
    ///
    /// With ports at positions `p_0 < … < p_{k-1}` in `[0, L)`, the tape
    /// displacement ranges over `[-(L-1-p_0), p_{k-1}]` when the nearest
    /// port is always chosen, so the physical track must be longer than
    /// the data region by `overhead = (L-1-p_0) + p_{k-1}` domains. This
    /// is the classical capacity overhead of racetrack shifting; more
    /// ports reduce it.
    pub fn overhead_domains(&self) -> usize {
        let mut min_disp = 0i64;
        let mut max_disp = 0i64;
        for o in 0..self.domains_per_track {
            // Static nearest port (by position): the displacement range
            // actually exercised by the nearest-port policy.
            let disp = self
                .ports
                .positions()
                .iter()
                .map(|&p| o as i64 - p as i64)
                .min_by_key(|d| d.abs())
                .unwrap_or(0);
            min_disp = min_disp.min(disp);
            max_disp = max_disp.max(disp);
        }
        (max_disp - min_disp) as usize
    }

    /// Storage efficiency: data domains over total physical domains.
    pub fn storage_efficiency(&self) -> f64 {
        let l = self.domains_per_track as f64;
        l / (l + self.overhead_domains() as f64)
    }
}

impl Default for DeviceConfig {
    /// The default configuration used throughout the evaluation:
    /// 64-domain tracks, 32-track DBCs, a single port at offset 0,
    /// one DBC, and literature-default timing/energy.
    fn default() -> Self {
        DeviceConfig::builder()
            .build()
            .expect("default configuration is valid")
    }
}

/// Builder for [`DeviceConfig`]; see the type-level docs for an example.
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    domains_per_track: usize,
    tracks_per_dbc: usize,
    ports: Option<PortLayout>,
    port_count: usize,
    dbcs: usize,
    timing: TimingConfig,
    energy: EnergyConfig,
}

impl DeviceConfigBuilder {
    fn new() -> Self {
        DeviceConfigBuilder {
            domains_per_track: 64,
            tracks_per_dbc: 32,
            ports: None,
            port_count: 1,
            dbcs: 1,
            timing: TimingConfig::default(),
            energy: EnergyConfig::default(),
        }
    }

    /// Sets the number of data domains per track (`L`).
    pub fn domains_per_track(mut self, l: usize) -> Self {
        self.domains_per_track = l;
        self
    }

    /// Sets the number of tracks per DBC (`W`, the word width in bits).
    pub fn tracks_per_dbc(mut self, w: usize) -> Self {
        self.tracks_per_dbc = w;
        self
    }

    /// Uses `count` evenly spaced ports (positions computed by
    /// [`PortLayout::evenly_spaced`]). Overridden by
    /// [`port_positions`](Self::port_positions) if both are called.
    pub fn ports(mut self, count: usize) -> Self {
        self.port_count = count;
        self.ports = None;
        self
    }

    /// Uses explicit port positions (word offsets within the track).
    pub fn port_positions<I: IntoIterator<Item = usize>>(mut self, positions: I) -> Self {
        self.ports = Some(PortLayout::at_positions(positions));
        self
    }

    /// Sets the number of DBCs in the array.
    pub fn dbcs(mut self, dbcs: usize) -> Self {
        self.dbcs = dbcs;
        self
    }

    /// Overrides the timing parameters.
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Overrides the energy parameters.
    pub fn energy(mut self, energy: EnergyConfig) -> Self {
        self.energy = energy;
        self
    }

    /// Validates the parameters and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidConfig`] when any of the following
    /// holds: `domains_per_track == 0`, `tracks_per_dbc == 0` or `> 64`,
    /// `dbcs == 0`, no ports, more ports than domains, a port position
    /// outside the data region, duplicate port positions, or
    /// non-positive timing/energy scale factors.
    pub fn build(self) -> Result<DeviceConfig, DeviceError> {
        let invalid = |parameter: &'static str, reason: String| DeviceError::InvalidConfig {
            parameter,
            reason,
        };
        if self.domains_per_track == 0 {
            return Err(invalid("domains_per_track", "must be nonzero".into()));
        }
        if self.tracks_per_dbc == 0 {
            return Err(invalid("tracks_per_dbc", "must be nonzero".into()));
        }
        if self.tracks_per_dbc > 64 {
            return Err(invalid(
                "tracks_per_dbc",
                format!(
                    "word width {} exceeds the 64-bit word model",
                    self.tracks_per_dbc
                ),
            ));
        }
        if self.dbcs == 0 {
            return Err(invalid("dbcs", "must be nonzero".into()));
        }
        let ports = match self.ports {
            Some(layout) => layout,
            // A single port sits at offset 0 (the classic low-cost DWM
            // macro-cell); multiple ports are spread evenly.
            None if self.port_count == 1 => PortLayout::single(),
            None => PortLayout::evenly_spaced(self.port_count, self.domains_per_track),
        };
        if ports.is_empty() {
            return Err(invalid("ports", "at least one access port required".into()));
        }
        if ports.len() > self.domains_per_track {
            return Err(invalid(
                "ports",
                format!(
                    "{} ports do not fit on a {}-domain track",
                    ports.len(),
                    self.domains_per_track
                ),
            ));
        }
        if let Some(&p) = ports
            .positions()
            .iter()
            .find(|&&p| p >= self.domains_per_track)
        {
            return Err(invalid(
                "ports",
                format!(
                    "port position {p} outside the {}-word data region",
                    self.domains_per_track
                ),
            ));
        }
        let mut sorted = ports.positions().to_vec();
        sorted.dedup();
        if sorted.len() != ports.len() {
            return Err(invalid("ports", "duplicate port positions".into()));
        }
        if self.timing.clock_ns.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(invalid("timing.clock_ns", "must be positive".into()));
        }
        for (name, v) in [
            ("energy.shift_pj_per_track", self.energy.shift_pj_per_track),
            ("energy.read_pj", self.energy.read_pj),
            ("energy.write_pj", self.energy.write_pj),
            ("energy.leakage_mw", self.energy.leakage_mw),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(DeviceError::InvalidConfig {
                    parameter: match name {
                        "energy.shift_pj_per_track" => "energy.shift_pj_per_track",
                        "energy.read_pj" => "energy.read_pj",
                        "energy.write_pj" => "energy.write_pj",
                        _ => "energy.leakage_mw",
                    },
                    reason: "must be finite and non-negative".into(),
                });
            }
        }
        Ok(DeviceConfig {
            domains_per_track: self.domains_per_track,
            tracks_per_dbc: self.tracks_per_dbc,
            ports,
            dbcs: self.dbcs,
            timing: self.timing,
            energy: self.energy,
        })
    }
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        DeviceConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_single_ported() {
        let c = DeviceConfig::default();
        assert_eq!(c.domains_per_track(), 64);
        assert_eq!(c.tracks_per_dbc(), 32);
        assert_eq!(c.port_layout().len(), 1);
        assert_eq!(c.dbcs(), 1);
        assert_eq!(c.capacity_words(), 64);
    }

    #[test]
    fn zero_domains_rejected() {
        let err = DeviceConfig::builder().domains_per_track(0).build();
        assert!(matches!(
            err,
            Err(DeviceError::InvalidConfig {
                parameter: "domains_per_track",
                ..
            })
        ));
    }

    #[test]
    fn wide_words_rejected() {
        let err = DeviceConfig::builder().tracks_per_dbc(65).build();
        assert!(matches!(err, Err(DeviceError::InvalidConfig { .. })));
    }

    #[test]
    fn too_many_ports_rejected() {
        let err = DeviceConfig::builder()
            .domains_per_track(4)
            .ports(5)
            .build();
        assert!(matches!(err, Err(DeviceError::InvalidConfig { .. })));
    }

    #[test]
    fn port_position_outside_track_rejected() {
        let err = DeviceConfig::builder()
            .domains_per_track(8)
            .port_positions([9])
            .build();
        assert!(matches!(err, Err(DeviceError::InvalidConfig { .. })));
    }

    #[test]
    fn duplicate_port_positions_rejected() {
        let err = DeviceConfig::builder()
            .domains_per_track(8)
            .port_positions([2, 2])
            .build();
        assert!(matches!(err, Err(DeviceError::InvalidConfig { .. })));
    }

    #[test]
    fn overhead_shrinks_with_more_ports() {
        let one = DeviceConfig::builder()
            .domains_per_track(64)
            .ports(1)
            .build()
            .unwrap();
        let four = DeviceConfig::builder()
            .domains_per_track(64)
            .ports(4)
            .build()
            .unwrap();
        assert!(four.overhead_domains() < one.overhead_domains());
        assert!(four.storage_efficiency() > one.storage_efficiency());
    }

    #[test]
    fn json_round_trip() {
        let c = DeviceConfig::builder().ports(2).build().unwrap();
        let json = dwm_foundation::json::to_string(&c);
        let back: DeviceConfig = dwm_foundation::json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn negative_energy_rejected() {
        let err = DeviceConfig::builder()
            .energy(EnergyConfig {
                read_pj: -1.0,
                ..EnergyConfig::default()
            })
            .build();
        assert!(matches!(err, Err(DeviceError::InvalidConfig { .. })));
    }
}
