//! Exact optimal placement by branch and bound.
//!
//! An independent exact solver used to cross-check the subset DP in
//! [`crate::exact`] (two implementations agreeing on the optimum is a
//! strong correctness signal) and to handle slightly larger sparse
//! instances: where the DP's `O(2ⁿ)` table is indifferent to structure,
//! branch and bound prunes aggressively on graphs with strong locality.
//!
//! # Search and bounds
//!
//! Positions are filled left to right; a node of the search tree is a
//! prefix of the order. Its cost-so-far uses the prefix-cut identity
//! (see [`crate::exact`]): extending the prefix adds `cut(prefix)` to
//! the objective. The lower bound is `cost_so_far + Σ w(u,v)` over
//! edges with **both endpoints unplaced** — each such edge will span at
//! least one future boundary, while an edge already crossing the
//! boundary may contribute nothing more. The incumbent is seeded with
//! the [`Hybrid`](crate::Hybrid) heuristic so pruning bites from the
//! first descent, and children are explored weakest-cut-first.

use dwm_graph::AccessGraph;

use crate::algorithms::PlacementAlgorithm;
use crate::error::PlacementError;
use crate::placement::Placement;

/// Hard limit for the branch-and-bound solver. Above ~24 items even
/// well-pruned search trees explode on dense graphs.
pub const MAX_BB_ITEMS: usize = 24;

struct Search<'g> {
    graph: &'g AccessGraph,
    n: usize,
    /// Best complete cost found so far.
    best_cost: u64,
    /// Order achieving `best_cost`.
    best_order: Vec<usize>,
    /// Current prefix.
    prefix: Vec<usize>,
    in_prefix: Vec<bool>,
    /// Σ of weights of edges with *both* endpoints unplaced. Each such
    /// edge will span at least one future boundary, so it contributes
    /// at least its weight to the final cost; edges already crossing
    /// the prefix boundary can contribute 0 more (their second endpoint
    /// may be placed immediately next), so they are excluded.
    remaining_edge_weight: u64,
}

impl<'g> Search<'g> {
    fn run(&mut self, cost_so_far: u64, cut: u64) {
        if self.prefix.len() == self.n {
            if cost_so_far < self.best_cost {
                self.best_cost = cost_so_far;
                self.best_order = self.prefix.clone();
            }
            return;
        }
        // Lower bound: every still-internal edge of the complement
        // contributes at least its weight once both ends are placed.
        if cost_so_far + self.remaining_edge_weight >= self.best_cost {
            return;
        }
        // Order candidates by the cut they would produce (weakest cut
        // first) — good solutions early tighten the bound.
        let mut candidates: Vec<(u64, u64, usize)> = (0..self.n)
            .filter(|&v| !self.in_prefix[v])
            .map(|v| {
                // cut(prefix ∪ {v}) = cut + deg(v) − 2·w(v, prefix)
                let mut into = 0u64;
                let mut outside = 0u64;
                for (u, w) in self.graph.neighbors(v) {
                    if self.in_prefix[u] {
                        into += w;
                    } else {
                        outside += w;
                    }
                }
                (cut + self.graph.degree(v) - 2 * into, outside, v)
            })
            .collect();
        candidates.sort_unstable();

        for (next_cut, edge_to_unplaced, v) in candidates {
            // Placing v turns its fully-unplaced edges into crossing
            // edges, which leave the remaining-edge bound.
            self.prefix.push(v);
            self.in_prefix[v] = true;
            self.remaining_edge_weight -= edge_to_unplaced;
            let add = if self.prefix.len() == self.n {
                0
            } else {
                next_cut
            };
            self.run(cost_so_far + add, next_cut);
            self.remaining_edge_weight += edge_to_unplaced;
            self.in_prefix[v] = false;
            self.prefix.pop();
        }
    }
}

/// Computes a provably optimal placement by branch and bound.
///
/// Produces the same cost as [`crate::exact::optimal_placement`]
/// (verified by tests); the returned order may differ when several
/// optima exist.
///
/// # Errors
///
/// Returns [`PlacementError::TooLargeForExact`] when the graph has more
/// than [`MAX_BB_ITEMS`] items.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::path_graph;
/// use dwm_core::exact_bb::branch_and_bound_placement;
///
/// let g = path_graph(8, 2);
/// let (_, cost) = branch_and_bound_placement(&g)?;
/// assert_eq!(cost, 14);
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
pub fn branch_and_bound_placement(graph: &AccessGraph) -> Result<(Placement, u64), PlacementError> {
    let n = graph.num_items();
    if n > MAX_BB_ITEMS {
        return Err(PlacementError::TooLargeForExact {
            items: n,
            limit: MAX_BB_ITEMS,
        });
    }
    if n == 0 {
        return Ok((Placement::identity(0), 0));
    }
    // Seed the incumbent with a good heuristic so pruning bites
    // immediately.
    let seed = crate::algorithms::Hybrid::default().place(graph);
    let seed_cost = graph.arrangement_cost(seed.offsets());

    let mut search = Search {
        graph,
        n,
        best_cost: seed_cost,
        best_order: seed.order().to_vec(),
        prefix: Vec::with_capacity(n),
        in_prefix: vec![false; n],
        remaining_edge_weight: graph.total_weight(),
    };
    search.run(0, 0);
    let placement = Placement::from_order(search.best_order.clone());
    debug_assert_eq!(
        graph.arrangement_cost(placement.offsets()),
        search.best_cost
    );
    Ok((placement, search.best_cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_placement;
    use dwm_graph::generators::{clustered_graph, path_graph, random_graph};

    #[test]
    fn agrees_with_subset_dp_on_random_graphs() {
        for seed in 0..10 {
            let g = random_graph(10, 0.5, 7, seed);
            let (_, dp) = optimal_placement(&g).unwrap();
            let (p, bb) = branch_and_bound_placement(&g).unwrap();
            assert_eq!(dp, bb, "seed {seed}");
            assert_eq!(g.arrangement_cost(p.offsets()), bb);
        }
    }

    #[test]
    fn agrees_with_subset_dp_on_clustered_graphs() {
        for seed in 0..6 {
            let g = clustered_graph(12, 3, 0.8, 0.2, 5, seed);
            let (_, dp) = optimal_placement(&g).unwrap();
            let (_, bb) = branch_and_bound_placement(&g).unwrap();
            assert_eq!(dp, bb, "seed {seed}");
        }
    }

    #[test]
    fn path_is_solved_exactly() {
        let g = path_graph(12, 4);
        let (_, cost) = branch_and_bound_placement(&g).unwrap();
        assert_eq!(cost, 11 * 4);
    }

    #[test]
    fn rejects_oversized_instances() {
        let g = AccessGraph::with_items(MAX_BB_ITEMS + 1);
        assert!(matches!(
            branch_and_bound_placement(&g),
            Err(PlacementError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn trivial_instances() {
        let (p, c) = branch_and_bound_placement(&AccessGraph::with_items(0)).unwrap();
        assert_eq!((p.num_items(), c), (0, 0));
        let (p, c) = branch_and_bound_placement(&AccessGraph::with_items(1)).unwrap();
        assert_eq!((p.num_items(), c), (1, 0));
    }

    #[test]
    fn handles_sparse_larger_instances() {
        // 22 items is beyond the DP's comfort but fine for B&B on a
        // path-like sparse graph.
        let g = path_graph(22, 2);
        let (_, cost) = branch_and_bound_placement(&g).unwrap();
        assert_eq!(cost, 21 * 2);
    }
}
