//! Pure shift-distance arithmetic shared by the analytic cost models
//! and the functional simulator.
//!
//! Since the topology subsystem landed, the single source of truth for
//! "how many shifts does moving the tape from state A to serve access B
//! take" is [`crate::topology`]; these functions are the *linear* fast
//! path and delegate to [`topology::Linear`](crate::topology::Linear).
//! Keeping the thin wrappers (with no state of their own) lets
//! `dwm-core`'s evaluators and `dwm-sim`'s replay agree exactly — an
//! invariant checked by the cross-validation integration test.

use crate::port::{PortId, PortLayout};
use crate::topology::{Linear, TapeState, TrackTopology};

/// Shift distance between two word offsets on a single-port tape whose
/// state is "offset currently under the port".
///
/// This is the cost model under which placement reduces to minimum
/// linear arrangement: consecutive accesses `a → b` cost `|pos(a) −
/// pos(b)|` single-domain shifts.
///
/// # Example
///
/// ```
/// assert_eq!(dwm_device::shift::single_port_distance(3, 10), 7);
/// assert_eq!(dwm_device::shift::single_port_distance(10, 3), 7);
/// ```
pub fn single_port_distance(from: usize, to: usize) -> u64 {
    (from as i64).abs_diff(to as i64)
}

/// Result of planning one access on a multi-port tape: which port to
/// use, the shift distance, and the tape displacement afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftPlan {
    /// Port chosen to serve the access.
    pub port: PortId,
    /// Single-domain steps the tape must move.
    pub distance: u64,
    /// Tape displacement after the access completes.
    pub displacement: i64,
}

/// Plans one access under the *nearest-port* policy: pick the port that
/// minimizes shift distance from the current displacement (ties go to
/// the lowest-numbered port).
///
/// With a single port at position 0 this degenerates to the
/// [`single_port_distance`] model: displacement equals the offset under
/// the port.
///
/// # Example
///
/// ```
/// use dwm_device::PortLayout;
/// use dwm_device::shift::nearest_port_plan;
///
/// let ports = PortLayout::at_positions([0, 32]);
/// let plan = nearest_port_plan(&ports, 0, 30);
/// assert_eq!(ports.positions()[plan.port.0], 32);
/// assert_eq!(plan.distance, 2);
/// ```
pub fn nearest_port_plan(ports: &PortLayout, displacement: i64, offset: usize) -> ShiftPlan {
    let plan = Linear.plan(
        ports,
        0, // the linear plan never reads the track length
        TapeState {
            longitudinal: displacement,
            transverse: 0,
        },
        offset,
    );
    ShiftPlan {
        port: plan.port,
        distance: plan.distance,
        displacement: plan.state.longitudinal,
    }
}

/// Total shift count of replaying `offsets` under the nearest-port
/// policy starting from displacement 0.
///
/// Convenience used by tests and quick estimates; the full evaluator in
/// `dwm-core` exposes richer per-access output.
pub fn replay_shift_count<I>(ports: &PortLayout, offsets: I) -> u64
where
    I: IntoIterator<Item = usize>,
{
    let mut displacement = 0i64;
    let mut total = 0u64;
    for offset in offsets {
        let plan = nearest_port_plan(ports, displacement, offset);
        total += plan.distance;
        displacement = plan.displacement;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_distance_is_symmetric_metric() {
        for a in 0..20usize {
            for b in 0..20usize {
                assert_eq!(single_port_distance(a, b), single_port_distance(b, a));
                for c in 0..20usize {
                    // Triangle inequality.
                    assert!(
                        single_port_distance(a, c)
                            <= single_port_distance(a, b) + single_port_distance(b, c)
                    );
                }
            }
        }
    }

    #[test]
    fn single_port_replay_matches_pairwise_distances() {
        let ports = PortLayout::single();
        let seq = [4usize, 9, 1, 1, 7];
        let expected: u64 = (4 + 5 + 8) + 6;
        assert_eq!(replay_shift_count(&ports, seq), expected);
    }

    #[test]
    fn more_ports_never_cost_more() {
        let one = PortLayout::single();
        let two = PortLayout::at_positions([0, 32]);
        let seq: Vec<usize> = (0..64).chain((0..64).rev()).collect();
        assert!(replay_shift_count(&two, seq.iter().copied()) <= replay_shift_count(&one, seq));
    }

    #[test]
    fn plan_updates_displacement() {
        let ports = PortLayout::at_positions([0, 8]);
        let p1 = nearest_port_plan(&ports, 0, 7);
        assert_eq!(ports.positions()[p1.port.0], 8);
        assert_eq!(p1.distance, 1);
        assert_eq!(p1.displacement, -1);
        let p2 = nearest_port_plan(&ports, p1.displacement, 0);
        // Offset 0 via port 0 needs displacement 0 → 1 step from −1.
        assert_eq!(p2.distance, 1);
    }
}
