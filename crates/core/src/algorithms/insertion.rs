use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Greedy best-position insertion (classic MinLA construction).
///
/// Items are considered in descending weighted-degree order; each item
/// is inserted into the *position* of the partial order that minimizes
/// the partial arrangement cost, shifting later items right. Unlike
/// [`ChainGrowth`](crate::ChainGrowth), which commits to heavy edges
/// pairwise, insertion evaluates each item against the whole prefix, so
/// it handles high-degree "hub" vertices (grids, stars) better.
///
/// The candidate costs are computed with one incremental sweep per
/// item instead of re-scoring the prefix per slot: inserting `v` at
/// slot `k` costs
///
/// ```text
/// cost(k) = C + cut(k) + ext(k)
/// ```
///
/// where `C` is the running cost of the placed prefix, `cut(k)` is the
/// placed-edge weight crossing slot boundary `k` (every placed pair
/// the insertion pushes apart by one), and `ext(k)` sums `v`'s own
/// edge lengths. Both terms update in `O(1)`–`O(deg)` as `k` advances,
/// so one item costs `O(m + Σ deg(placed) + deg(v))` and the whole
/// construction `O(n·(n + E))` — down from `O(n³·d̄)` for the
/// re-scoring formulation, with bit-identical slot costs and
/// tie-breaking.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::path_graph;
/// use dwm_core::{GreedyInsertion, PlacementAlgorithm};
///
/// let g = path_graph(12, 2);
/// let p = GreedyInsertion::default().place(&g);
/// // A path's optimal arrangement cost is (n-1)·w = 22.
/// assert_eq!(g.arrangement_cost(p.offsets()), 22);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyInsertion;

impl GreedyInsertion {
    /// [`place`](PlacementAlgorithm::place) on an already-frozen graph.
    pub fn place_frozen(&self, csr: &CsrGraph) -> Placement {
        let n = csr.num_items();
        if n == 0 {
            return Placement::identity(0);
        }
        let mut items: Vec<usize> = (0..n).collect();
        items.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));

        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut pos = vec![usize::MAX; n];
        // Scatter array: weight_to_v[u] = w(v, u) for the item being
        // inserted (reset after each item).
        let mut weight_to_v = vec![0u64; n];
        // Running arrangement cost of the placed prefix.
        let mut prefix_cost = 0u64;
        for v in items {
            let m = order.len();
            // ext(k) = Σ_z w(v,z)·(k − pos(z))        for placed z left of k
            //        + Σ_z w(v,z)·(pos(z) + 1 − k)    for placed z at/after k
            // tracked via weight sums (s_*) and position moments (m_*).
            let (mut s_less, mut m_less, mut s_geq, mut m_geq) = (0u64, 0u64, 0u64, 0u64);
            let (vs, ws) = csr.neighbor_slices(v);
            for (&z, &w) in vs.iter().zip(ws) {
                weight_to_v[z as usize] = w;
                let pz = pos[z as usize];
                if pz != usize::MAX {
                    s_geq += w;
                    m_geq += w * pz as u64;
                }
            }
            // cut(k): placed-edge weight crossing boundary k, advanced
            // by one placed item per step.
            let mut cut = 0u64;
            let mut best_slot = 0usize;
            let mut best_cost = u64::MAX;
            // Indexes slots 0..=m but reads `order[k]` only for k < m.
            #[allow(clippy::needless_range_loop)]
            for k in 0..=m {
                let ku = k as u64;
                let cost =
                    prefix_cost + cut + (ku * s_less - m_less) + (m_geq + s_geq - ku * s_geq);
                if cost < best_cost {
                    best_cost = cost;
                    best_slot = k;
                }
                if k == m {
                    break;
                }
                // Advance the boundary past order[k].
                let u = order[k];
                let (uvs, uws) = csr.neighbor_slices(u);
                let (mut to_left, mut to_right) = (0u64, 0u64);
                for (&z, &w) in uvs.iter().zip(uws) {
                    let pz = pos[z as usize];
                    if pz == usize::MAX {
                        continue;
                    }
                    if pz < k {
                        to_left += w;
                    } else if pz > k {
                        to_right += w;
                    }
                }
                cut = cut + to_right - to_left;
                let w_uv = weight_to_v[u];
                if w_uv != 0 {
                    s_geq -= w_uv;
                    m_geq -= w_uv * ku;
                    s_less += w_uv;
                    m_less += w_uv * ku;
                }
            }
            for &z in vs {
                weight_to_v[z as usize] = 0;
            }
            order.insert(best_slot, v);
            for (p, &u) in order.iter().enumerate().skip(best_slot) {
                pos[u] = p;
            }
            prefix_cost = best_cost;
        }
        Placement::from_order(order)
    }
}

impl PlacementAlgorithm for GreedyInsertion {
    fn name(&self) -> String {
        "insertion".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        self.place_frozen(&CsrGraph::freeze(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{interleaved_cluster_graph, kernel_graph};
    use dwm_graph::generators::{path_graph, random_graph};

    /// The pre-incremental formulation: re-score the whole prefix for
    /// every candidate slot. Kept as the reference the sweep must match
    /// slot for slot.
    fn reference_place(graph: &AccessGraph) -> Placement {
        let n = graph.num_items();
        if n == 0 {
            return Placement::identity(0);
        }
        let mut items: Vec<usize> = (0..n).collect();
        items.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut pos = vec![usize::MAX; n];
        for v in items {
            let mut best_slot = 0usize;
            let mut best_cost = u64::MAX;
            for slot in 0..=order.len() {
                order.insert(slot, v);
                for (p, &u) in order.iter().enumerate() {
                    pos[u] = p;
                }
                let mut cost = 0u64;
                for &u in &order {
                    for (z, w) in graph.neighbors(u) {
                        if z > u && pos[z] != usize::MAX {
                            cost += w * (pos[u] as i64).abs_diff(pos[z] as i64);
                        }
                    }
                }
                if cost < best_cost {
                    best_cost = cost;
                    best_slot = slot;
                }
                order.remove(slot);
            }
            order.insert(best_slot, v);
            for (p, &u) in order.iter().enumerate() {
                pos[u] = p;
            }
            pos[v] = best_slot;
        }
        Placement::from_order(order)
    }

    #[test]
    fn matches_rescoring_reference() {
        for seed in 0..6 {
            let g = random_graph(20, 0.35, 6, seed);
            assert_eq!(
                GreedyInsertion.place(&g),
                reference_place(&g),
                "seed {seed}"
            );
        }
        assert_eq!(
            GreedyInsertion.place(&kernel_graph()),
            reference_place(&kernel_graph())
        );
    }

    #[test]
    fn recovers_path_order() {
        let g = path_graph(10, 3);
        let p = GreedyInsertion.place(&g);
        assert_eq!(g.arrangement_cost(p.offsets()), 9 * 3);
    }

    #[test]
    fn valid_permutation_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(18, 0.4, 5, seed);
            let p = GreedyInsertion.place(&g);
            let mut seen = [false; 18];
            for off in 0..18 {
                assert!(!seen[p.item_at(off)]);
                seen[p.item_at(off)] = true;
            }
        }
    }

    #[test]
    fn groups_interleaved_clusters() {
        let g = interleaved_cluster_graph();
        let naive = g.arrangement_cost(Placement::identity(6).offsets());
        let ins = g.arrangement_cost(GreedyInsertion.place(&g).offsets());
        assert!(ins < naive);
    }

    #[test]
    fn deterministic() {
        let g = kernel_graph();
        assert_eq!(GreedyInsertion.place(&g), GreedyInsertion.place(&g));
    }

    #[test]
    fn handles_trivial_graphs() {
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(0))
                .num_items(),
            0
        );
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(1))
                .num_items(),
            1
        );
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(5))
                .num_items(),
            5
        );
    }
}
