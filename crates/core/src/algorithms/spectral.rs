use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Spectral (Fiedler-vector) ordering.
///
/// Sorting vertices by their component in the Laplacian's second-
/// smallest eigenvector is the classic continuous relaxation of minimum
/// linear arrangement. The eigenvector is computed matrix-free with
/// shifted power iteration: iterate `y = (cI − L)x` with `c` above the
/// spectral radius (Gershgorin bound `2·max_degree`), projecting out
/// the all-ones kernel each step. No external linear-algebra crate is
/// needed and memory stays `O(V + E)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spectral {
    /// Maximum power-iteration steps.
    pub max_iters: usize,
    /// Convergence tolerance on the iterate's change (L∞ norm).
    pub tolerance: f64,
}

impl Default for Spectral {
    fn default() -> Self {
        Spectral {
            max_iters: 600,
            tolerance: 1e-10,
        }
    }
}

impl Spectral {
    /// Computes (an approximation of) the Fiedler vector of `graph`.
    ///
    /// Returns a zero vector for graphs with fewer than 2 vertices.
    pub fn fiedler_vector(&self, graph: &AccessGraph) -> Vec<f64> {
        self.fiedler_vector_frozen(&CsrGraph::freeze(graph))
    }

    /// [`fiedler_vector`](Self::fiedler_vector) on an already-frozen
    /// graph. The power iteration streams CSR neighbour slices in the
    /// same order the `BTreeMap` walk used, so the floating-point
    /// accumulation — and therefore the resulting ordering — is
    /// unchanged.
    pub fn fiedler_vector_frozen(&self, csr: &CsrGraph) -> Vec<f64> {
        let n = csr.num_items();
        if n < 2 {
            return vec![0.0; n];
        }
        let c = 2.0 * (0..n).map(|u| csr.degree(u) as f64).fold(0.0, f64::max) + 1.0;

        // Deterministic, non-degenerate start vector orthogonal to 1.
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.25).collect();
        project_out_ones(&mut x);
        normalize(&mut x);

        let mut y = vec![0.0; n];
        for _ in 0..self.max_iters {
            // y = (cI − L)x = c·x − D·x + W·x, matrix-free.
            for (u, out) in y.iter_mut().enumerate() {
                let mut acc = (c - csr.degree(u) as f64) * x[u];
                let (vs, ws) = csr.neighbor_slices(u);
                for (&v, &w) in vs.iter().zip(ws) {
                    acc += w as f64 * x[v as usize];
                }
                *out = acc;
            }
            project_out_ones(&mut y);
            normalize(&mut y);
            let delta = x
                .iter()
                .zip(&y)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut x, &mut y);
            if delta < self.tolerance {
                break;
            }
        }
        x
    }

    /// [`place`](PlacementAlgorithm::place) on an already-frozen graph.
    pub fn place_frozen(&self, csr: &CsrGraph) -> Placement {
        let fiedler = self.fiedler_vector_frozen(csr);
        spectral_order(&fiedler, csr.num_items())
    }
}

/// Sorts items by Fiedler component (ties break by index) into a
/// placement.
fn spectral_order(fiedler: &[f64], n: usize) -> Placement {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        fiedler[a]
            .partial_cmp(&fiedler[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    Placement::from_order(order)
}

fn project_out_ones(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    } else {
        // Degenerate iterate (disconnected or tiny graph): restart from
        // a fixed non-constant vector.
        for (i, v) in x.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
    }
}

impl PlacementAlgorithm for Spectral {
    fn name(&self) -> String {
        "spectral".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        self.place_frozen(&CsrGraph::freeze(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::two_cluster_graph;
    use dwm_graph::generators::path_graph;

    #[test]
    fn recovers_path_order() {
        // On a path graph the Fiedler vector is monotone along the
        // path, so spectral ordering must recover the path (possibly
        // mirrored) — the known-optimal arrangement.
        let g = path_graph(10, 1);
        let p = Spectral::default().place(&g);
        let cost = g.arrangement_cost(p.offsets());
        assert_eq!(cost, 9, "spectral should recover the optimal path order");
    }

    #[test]
    fn separates_clusters() {
        let g = two_cluster_graph();
        let p = Spectral::default().place(&g);
        // All of cluster {0,1,2} on one side, {3,4,5} on the other.
        let side: Vec<bool> = (0..6).map(|i| p.offset_of(i) < 3).collect();
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_eq!(side[3], side[4]);
        assert_eq!(side[4], side[5]);
        assert_ne!(side[0], side[3]);
    }

    #[test]
    fn fiedler_vector_is_unit_and_centred() {
        let g = two_cluster_graph();
        let f = Spectral::default().fiedler_vector(&g);
        let norm: f64 = f.iter().map(|v| v * v).sum();
        let mean: f64 = f.iter().sum::<f64>() / f.len() as f64;
        assert!((norm - 1.0).abs() < 1e-6);
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for n in 0..3 {
            let g = AccessGraph::with_items(n);
            assert_eq!(Spectral::default().place(&g).num_items(), n);
        }
    }

    #[test]
    fn deterministic() {
        let g = two_cluster_graph();
        assert_eq!(Spectral::default().place(&g), Spectral::default().place(&g));
    }
}
