//! Trace persistence: a line-oriented text format and JSON.
//!
//! The text format is one access per line, `r <id>` or `w <id>`, with
//! `#`-prefixed comment lines; the first comment line of the form
//! `# label: <name>` sets the trace label. This is easy to produce from
//! external tools (pin tools, compiler instrumentation) and easy to
//! diff. JSON goes through `dwm_foundation::json` and preserves
//! everything.
//!
//! # Example
//!
//! ```
//! use dwm_trace::{Trace, io};
//!
//! let trace = Trace::from_ids([1u32, 2, 1]).with_label("tiny");
//! let text = io::to_text(&trace);
//! let back = io::from_text(&text)?;
//! assert_eq!(back, trace);
//! # Ok::<(), dwm_trace::io::ParseTraceError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use dwm_foundation::json::JsonError;

use crate::access::{Access, AccessKind, ItemId, Trace};

/// Error parsing the text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of what was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl Error for ParseTraceError {}

/// Serializes a trace to the line-oriented text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    if !trace.label().is_empty() {
        out.push_str(&format!("# label: {}\n", trace.label()));
    }
    for a in trace.iter() {
        let k = if a.kind.is_write() { 'w' } else { 'r' };
        out.push_str(&format!("{k} {}\n", a.item.0));
    }
    out
}

/// Parses the line-oriented text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on a malformed line (unknown kind
/// letter, missing or non-numeric id).
pub fn from_text(text: &str) -> Result<Trace, ParseTraceError> {
    let mut trace = Trace::new();
    let mut label = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(l) = comment.trim().strip_prefix("label:") {
                label = l.trim().to_string();
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = match parts.next() {
            Some("r") | Some("R") => AccessKind::Read,
            Some("w") | Some("W") => AccessKind::Write,
            other => {
                return Err(ParseTraceError {
                    line: i + 1,
                    reason: format!("expected access kind 'r' or 'w', got {other:?}"),
                })
            }
        };
        let id: u32 = parts
            .next()
            .ok_or_else(|| ParseTraceError {
                line: i + 1,
                reason: "missing item id".into(),
            })?
            .parse()
            .map_err(|e| ParseTraceError {
                line: i + 1,
                reason: format!("bad item id: {e}"),
            })?;
        trace.push(Access {
            item: ItemId(id),
            kind,
        });
    }
    Ok(trace.with_label(label))
}

/// Writes a trace to `path` in the text format.
///
/// # Errors
///
/// Propagates I/O errors from the filesystem.
pub fn save_text<P: AsRef<Path>>(trace: &Trace, path: P) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_text(trace).as_bytes())
}

/// Reads a trace from a text-format file.
///
/// # Errors
///
/// Returns an I/O error wrapped around [`ParseTraceError`] when the
/// content is malformed.
pub fn load_text<P: AsRef<Path>>(path: P) -> std::io::Result<Trace> {
    let text = fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Serializes a trace to JSON.
pub fn to_json(trace: &Trace) -> String {
    dwm_foundation::json::to_string(trace)
}

/// Parses a trace from JSON.
///
/// # Errors
///
/// Returns a [`JsonError`] with line/column position on malformed
/// input.
pub fn from_json(json: &str) -> Result<Trace, JsonError> {
    dwm_foundation::json::from_str(json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip_preserves_everything() {
        let t = Trace::from_accesses([Access::read(3u32), Access::write(1u32)]).with_label("k1");
        assert_eq!(from_text(&to_text(&t)).unwrap(), t);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = from_text("# hello\n\nr 1\n# mid\nw 2\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.label(), "");
    }

    #[test]
    fn label_comment_is_parsed() {
        let t = from_text("# label: fft\nr 0\n").unwrap();
        assert_eq!(t.label(), "fft");
    }

    #[test]
    fn bad_kind_is_reported_with_line() {
        let err = from_text("r 0\nx 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn bad_id_is_reported() {
        let err = from_text("r banana\n").unwrap_err();
        assert!(err.reason.contains("bad item id"));
    }

    #[test]
    fn missing_id_is_reported() {
        let err = from_text("w\n").unwrap_err();
        assert!(err.reason.contains("missing item id"));
    }

    #[test]
    fn json_round_trip() {
        let t = Trace::from_ids([5u32, 6]).with_label("j");
        assert_eq!(from_json(&to_json(&t)).unwrap(), t);
    }

    #[test]
    fn file_round_trip() {
        let t = Trace::from_ids([1u32, 2, 3]).with_label("file");
        let path = std::env::temp_dir().join("dwm_trace_io_test.trace");
        save_text(&t, &path).unwrap();
        assert_eq!(load_text(&path).unwrap(), t);
        let _ = std::fs::remove_file(&path);
    }
}
