//! Zero-dependency metrics and tracing — the workspace's
//! observability substrate.
//!
//! The paper's whole argument is a cost model (shifts saved per
//! access), so the reproduction needs to show its work at runtime:
//! moves proposed vs. accepted, shift-distance distributions, cache
//! hit rates. This module provides that introspection without pulling
//! `prometheus`/`metrics`/`tracing` from crates.io:
//!
//! * [`Counter`] — monotonic, striped over cache-line-padded atomics
//!   so concurrent hot-path increments don't contend;
//! * [`Gauge`] — a signed point-in-time value (queue depths);
//! * [`Histogram`] — an atomic log-bucketed histogram sharing the
//!   bucketing scheme of [`crate::bench::Histogram`] (≤ ~1.6%
//!   relative quantization error), with [`Histogram::span`] timers
//!   for scoped latency measurement;
//! * [`Registry`] — a sharded name → metric map. Each metric is
//!   registered once and handed out as a cheap [`Arc`] handle;
//!   instrument code caches the handle in a `static` (see the
//!   [`obs_counter!`](crate::obs_counter) family of macros), so the
//!   steady-state cost of an increment is a relaxed atomic load (the
//!   [`enabled`] check) plus one relaxed `fetch_add`.
//!
//! # The `DWM_OBS` knob
//!
//! Recording is gated on [`enabled`], resolved once from the
//! [`OBS_ENV`] (`DWM_OBS`) environment variable: unset or any value
//! other than `0`/`false`/`off`/`no` means **on** (observability is on
//! by default). When disabled, every gated `record`/`add` is a single
//! relaxed atomic load and an untaken branch — cheap enough to leave
//! the instrumentation compiled in unconditionally. Tests and benches
//! flip the state with [`override_enabled`] (serialize via
//! [`TEST_OVERRIDE_LOCK`], mirroring `par::override_threads`).
//!
//! A few call sites bypass the gate on purpose: counters that double
//! as a service's *source of truth* (the request counters backing
//! `dwm-serve`'s `/stats`) use [`Counter::add_always`] so the endpoint
//! stays correct even with `DWM_OBS=0`.
//!
//! # Determinism
//!
//! Metrics never flow into response bodies or solver artifacts — they
//! are exported only through dedicated channels (`GET /metrics`, the
//! CLI `--obs` dump, [`render_prometheus`]/[`dump_json`]). Solver
//! *outputs* therefore stay byte-identical at any `DWM_THREADS` with
//! observability on; the metric *values* themselves are allowed to
//! vary where the underlying work genuinely does (branch-and-bound
//! prune counts depend on incumbent-propagation timing across
//! threads).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::bench;
use crate::json::{Number, Object, Value};

/// Environment variable gating metric recording: unset or anything
/// other than `0`/`false`/`off`/`no` enables observability.
pub const OBS_ENV: &str = "DWM_OBS";

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Whether metric recording is on. First call resolves [`OBS_ENV`];
/// afterwards this is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = match std::env::var(OBS_ENV) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    };
    // Keep whatever an `override_enabled` installed concurrently.
    let _ = STATE.compare_exchange(
        UNINIT,
        if on { ON } else { OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == ON
}

/// Restores the pre-override enablement state on drop (see
/// [`override_enabled`]).
#[must_use = "dropping the guard immediately reverts the override"]
#[derive(Debug)]
pub struct ObsOverrideGuard {
    prev: u8,
}

/// Forces recording on or off for the lifetime of the returned guard,
/// ignoring [`OBS_ENV`]. Process-global: tests that combine an
/// override with assertions on gated metrics must hold
/// [`TEST_OVERRIDE_LOCK`] to avoid cross-test interference.
pub fn override_enabled(on: bool) -> ObsOverrideGuard {
    let prev = STATE.swap(if on { ON } else { OFF }, Ordering::SeqCst);
    ObsOverrideGuard { prev }
}

impl Drop for ObsOverrideGuard {
    fn drop(&mut self) {
        STATE.store(self.prev, Ordering::SeqCst);
    }
}

/// Serializes tests that call [`override_enabled`] against tests that
/// assert on gated metric values (`cargo test` shares one process).
pub static TEST_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Stripes per counter: enough to spread the workspace's worker-pool
/// sizes without contention, small enough to sum cheaply at scrape.
const STRIPES: usize = 16;

#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// Each thread's home stripe, assigned round-robin at first use.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A monotonic counter, striped across cache-line-padded atomics so
/// concurrent increments from the worker pool don't bounce one line.
#[derive(Debug)]
pub struct Counter {
    name: String,
    help: String,
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    fn new(name: String, help: String) -> Self {
        Counter {
            name,
            help,
            cells: Default::default(),
        }
    }

    /// Full metric name, including any label suffix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text supplied at registration.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Adds 1 when observability is [`enabled`].
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` when observability is [`enabled`]. Hot loops should
    /// accumulate into a local `u64` and call this once per batch.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.add_always(n);
        }
    }

    /// Adds 1 regardless of the [`enabled`] gate.
    #[inline]
    pub fn inc_always(&self) {
        self.add_always(1);
    }

    /// Adds `n` regardless of the [`enabled`] gate — for counters that
    /// are a service's source of truth (e.g. the request counters
    /// backing `dwm-serve`'s `/stats`), which must keep counting even
    /// with `DWM_OBS=0`.
    #[inline]
    pub fn add_always(&self, n: u64) {
        STRIPE.with(|&s| self.cells[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Current value (sum over stripes).
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A signed point-in-time value (queue depths, capacities).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    help: String,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: String, help: String) -> Self {
        Gauge {
            name,
            help,
            value: AtomicI64::new(0),
        }
    }

    /// Full metric name, including any label suffix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text supplied at registration.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Sets the gauge when observability is [`enabled`].
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative) when observability is
    /// [`enabled`].
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.add_always(delta);
        }
    }

    /// Adds `delta` regardless of the gate — use for paired
    /// inc/dec tracking (queue depth) so a mid-flight toggle cannot
    /// skew the balance.
    #[inline]
    pub fn add_always(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge regardless of the gate.
    #[inline]
    pub fn set_always(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic log-bucketed histogram sharing the bucket layout of
/// [`bench::Histogram`] (64 sub-buckets per power of two, ≤ ~1.6%
/// relative error). Values are `u64`; latency metrics record
/// nanoseconds by convention (`*_ns` names).
#[derive(Debug)]
pub struct Histogram {
    name: String,
    help: String,
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(name: String, help: String) -> Self {
        let counts: Vec<AtomicU64> = (0..bench::HIST_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect();
        Histogram {
            name,
            help,
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Full metric name, including any label suffix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text supplied at registration.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Records one value when observability is [`enabled`].
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.counts[bench::hist_bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a span timer that records its elapsed nanoseconds here
    /// when dropped. When observability is disabled at span start, the
    /// clock is never read and the drop is a no-op.
    pub fn span(&self) -> SpanTimer<'_> {
        SpanTimer {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy as a [`bench::Histogram`], for percentile
    /// queries and merging. Concurrent recording makes the copy
    /// slightly fuzzy (counts and extrema are read independently),
    /// which is fine for a monitoring scrape.
    pub fn snapshot(&self) -> bench::Histogram {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        bench::Histogram::from_raw(
            counts,
            total,
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// The `q`-quantile of a [`snapshot`](Self::snapshot), or `None`
    /// when empty.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.snapshot().percentile(q)
    }
}

/// Scoped timer: records elapsed nanoseconds into its histogram on
/// drop. Created by [`Histogram::span`].
#[must_use = "dropping the span immediately records ~0ns"]
#[derive(Debug)]
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// What a scrape-time callback metric reports as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// Rendered as a monotonic counter.
    Counter,
    /// Rendered as a gauge.
    Gauge,
}

/// A metric whose value is computed at scrape time by a callback —
/// used to export an external source of truth (e.g. the solve cache's
/// own counters) so two endpoints can never disagree about it.
pub struct FnMetric {
    name: String,
    help: String,
    kind: FnKind,
    read: Box<dyn Fn() -> u64 + Send + Sync>,
}

impl std::fmt::Debug for FnMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnMetric")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

impl FnMetric {
    /// Full metric name, including any label suffix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Help text supplied at registration.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// How the metric renders (counter or gauge).
    pub fn kind(&self) -> FnKind {
        self.kind
    }

    /// Invokes the callback.
    pub fn value(&self) -> u64 {
        (self.read)()
    }
}

/// One registered metric, as handed back by [`Registry::metrics`].
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
    /// A scrape-time callback ([`FnMetric`]).
    Fn(Arc<FnMetric>),
}

impl Metric {
    /// Full metric name, including any label suffix.
    pub fn name(&self) -> &str {
        match self {
            Metric::Counter(c) => c.name(),
            Metric::Gauge(g) => g.name(),
            Metric::Histogram(h) => h.name(),
            Metric::Fn(f) => f.name(),
        }
    }

    /// Help text supplied at registration.
    pub fn help(&self) -> &str {
        match self {
            Metric::Counter(c) => c.help(),
            Metric::Gauge(g) => g.help(),
            Metric::Histogram(h) => h.help(),
            Metric::Fn(f) => f.help(),
        }
    }
}

/// Shards in a [`Registry`] — registration is rare, so this only has
/// to keep scrapes from serializing against bursts of first-use
/// registrations.
const REGISTRY_SHARDS: usize = 8;

/// A name → metric map. Metrics register once (idempotently — a
/// second registration under the same name returns the existing
/// handle) and are read out for export sorted by name, so rendered
/// output is deterministic.
///
/// Two registries matter in practice: the process-wide [`global`] one
/// (solver, simulator, and transport metrics) and per-`Engine`
/// registries in `dwm-serve` (request/cache metrics, so tests can
/// spin up engines without sharing counter state).
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
    /// Labels stamped onto every metric registered here, ahead of any
    /// call-site labels. Lets N otherwise-identical registries (e.g.
    /// per-shard engines in a `dwm-serve` cluster) render side by side
    /// without name collisions.
    default_labels: Vec<(String, String)>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::with_labels(&[])
    }

    /// An empty registry whose every metric carries `labels` (before
    /// any labels passed at the registration call site).
    pub fn with_labels(labels: &[(&str, &str)]) -> Self {
        Registry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            default_labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    /// Builds the full metric key, merging the registry's default
    /// labels ahead of the call-site ones.
    fn key(&self, name: &str, labels: &[(&str, &str)]) -> String {
        if self.default_labels.is_empty() {
            return full_name(name, labels);
        }
        let merged: Vec<(&str, &str)> = self
            .default_labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(labels.iter().copied())
            .collect();
        full_name(name, &merged)
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, Metric>> {
        // FNV-1a over the key; registration is not a hot path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % REGISTRY_SHARDS as u64) as usize]
    }

    fn get_or_insert(&self, key: String, make: impl FnOnce(String) -> Metric) -> Metric {
        let mut shard = self.shard(&key).lock().expect("registry lock poisoned");
        if let Some(existing) = shard.get(&key) {
            return existing.clone();
        }
        let metric = make(key.clone());
        shard.insert(key, metric.clone());
        metric
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// [`counter`](Self::counter) with labels (pass them pre-sorted —
    /// the label set is part of the metric identity).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        let key = self.key(name, labels);
        match self.get_or_insert(key, |k| {
            Metric::Counter(Arc::new(Counter::new(k, help.to_owned())))
        }) {
            Metric::Counter(c) => c,
            other => panic!("{} already registered as {other:?}", name),
        }
    }

    /// Registers (or fetches) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// [`gauge`](Self::gauge) with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let key = self.key(name, labels);
        match self.get_or_insert(key, |k| {
            Metric::Gauge(Arc::new(Gauge::new(k, help.to_owned())))
        }) {
            Metric::Gauge(g) => g,
            other => panic!("{} already registered as {other:?}", name),
        }
    }

    /// Registers (or fetches) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric
    /// type.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// [`histogram`](Self::histogram) with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        let key = self.key(name, labels);
        match self.get_or_insert(key, |k| {
            Metric::Histogram(Arc::new(Histogram::new(k, help.to_owned())))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("{} already registered as {other:?}", name),
        }
    }

    /// Registers a scrape-time callback metric (idempotent by name;
    /// the first callback wins).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a non-callback
    /// metric.
    pub fn register_fn(
        &self,
        name: &str,
        help: &str,
        kind: FnKind,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) -> Arc<FnMetric> {
        let key = self.key(name, &[]);
        match self.get_or_insert(key, |k| {
            Metric::Fn(Arc::new(FnMetric {
                name: k,
                help: help.to_owned(),
                kind,
                read: Box::new(read),
            }))
        }) {
            Metric::Fn(f) => f,
            other => panic!("{} already registered as {other:?}", name),
        }
    }

    /// Every registered metric, sorted by full name.
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out: Vec<Metric> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("registry lock poisoned")
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// The registry as a JSON value (see [`dump_json`]).
    pub fn to_json(&self) -> Value {
        dump_json(&[self])
    }
}

/// The process-wide registry used by solver, simulator, graph, and
/// transport instrumentation (the [`obs_counter!`](crate::obs_counter)
/// macros register here).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Builds the full metric key `name{k="v",…}`, escaping label values.
fn full_name(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            && !name.starts_with(|c: char| c.is_ascii_digit()),
        "invalid metric name {name:?}"
    );
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a full key into `(family, label_block)` where `label_block`
/// includes the braces (`{…}`) or is empty.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => key.split_at(i),
        None => (key, ""),
    }
}

/// Merges an extra `k="v"` pair into an existing label block.
fn with_extra_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Quantiles exported for each histogram in both renderings.
const EXPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Renders the given registries (in order, merged and name-sorted) in
/// the Prometheus text exposition format, version 0.0.4. Histograms
/// render as summaries (`quantile` samples plus `_sum`/`_count`);
/// empty histograms report `NaN` quantiles, as the format prescribes.
pub fn render_prometheus(registries: &[&Registry]) -> String {
    let mut metrics: Vec<Metric> = registries.iter().flat_map(|r| r.metrics()).collect();
    metrics.sort_by(|a, b| a.name().cmp(b.name()));
    let mut out = String::new();
    let mut last_family = "";
    for metric in &metrics {
        let (family, labels) = split_key(metric.name());
        if family != last_family {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
                Metric::Fn(f) => match f.kind() {
                    FnKind::Counter => "counter",
                    FnKind::Gauge => "gauge",
                },
            };
            out.push_str(&format!("# HELP {family} {}\n", escape_help(metric.help())));
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            last_family = family;
        }
        match metric {
            Metric::Counter(c) => {
                out.push_str(&format!("{} {}\n", c.name(), c.value()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{} {}\n", g.name(), g.value()));
            }
            Metric::Fn(f) => {
                out.push_str(&format!("{} {}\n", f.name(), f.value()));
            }
            Metric::Histogram(h) => {
                let snap = h.snapshot();
                for (q, qs) in EXPORT_QUANTILES {
                    let block = with_extra_label(labels, &format!("quantile=\"{qs}\""));
                    match snap.percentile(q) {
                        Some(v) => out.push_str(&format!("{family}{block} {v}\n")),
                        None => out.push_str(&format!("{family}{block} NaN\n")),
                    }
                }
                out.push_str(&format!("{family}_sum{labels} {}\n", h.sum()));
                out.push_str(&format!("{family}_count{labels} {}\n", h.count()));
            }
        }
    }
    out
}

/// Dumps the given registries (merged and name-sorted) as one JSON
/// object: `{"metrics": [{"name", "type", …}, …]}`. This is what the
/// CLI `--obs` flag prints.
pub fn dump_json(registries: &[&Registry]) -> Value {
    let mut metrics: Vec<Metric> = registries.iter().flat_map(|r| r.metrics()).collect();
    metrics.sort_by(|a, b| a.name().cmp(b.name()));
    let items = metrics
        .iter()
        .map(|metric| {
            let mut obj = Object::new();
            obj.insert("name", Value::Str(metric.name().to_owned()));
            match metric {
                Metric::Counter(c) => {
                    obj.insert("type", Value::Str("counter".into()));
                    obj.insert("value", Value::Num(Number::U(c.value())));
                }
                Metric::Gauge(g) => {
                    obj.insert("type", Value::Str("gauge".into()));
                    let v = g.value();
                    let num = if v < 0 {
                        Number::I(v)
                    } else {
                        Number::U(v as u64)
                    };
                    obj.insert("value", Value::Num(num));
                }
                Metric::Fn(f) => {
                    obj.insert(
                        "type",
                        Value::Str(match f.kind() {
                            FnKind::Counter => "counter".into(),
                            FnKind::Gauge => "gauge".into(),
                        }),
                    );
                    obj.insert("value", Value::Num(Number::U(f.value())));
                }
                Metric::Histogram(h) => {
                    obj.insert("type", Value::Str("histogram".into()));
                    let snap = h.snapshot();
                    obj.insert("count", Value::Num(Number::U(h.count())));
                    obj.insert("sum", Value::Num(Number::U(h.sum())));
                    for (q, qs) in EXPORT_QUANTILES {
                        let key = format!("p{}", qs.trim_start_matches("0."));
                        match snap.percentile(q) {
                            Some(v) => obj.insert(&key, Value::Num(Number::U(v))),
                            None => obj.insert(&key, Value::Null),
                        }
                    }
                }
            }
            Value::Obj(obj)
        })
        .collect();
    let mut root = Object::new();
    root.insert("metrics", Value::Arr(items));
    Value::Obj(root)
}

/// Call-site-cached [`Counter`] handle in the [`global`](crate::obs::global)
/// registry: registers on first evaluation, then reuses the handle, so
/// the per-call cost is one initialized-check plus the increment.
#[macro_export]
macro_rules! obs_counter {
    ($name:expr, $help:expr $(,)?) => {{
        static __OBS_CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::obs::Counter>> =
            ::std::sync::OnceLock::new();
        &**__OBS_CELL.get_or_init(|| $crate::obs::global().counter($name, $help))
    }};
}

/// Call-site-cached [`Gauge`] handle in the [`global`](crate::obs::global)
/// registry (see [`obs_counter!`](crate::obs_counter)).
#[macro_export]
macro_rules! obs_gauge {
    ($name:expr, $help:expr $(,)?) => {{
        static __OBS_CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::obs::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__OBS_CELL.get_or_init(|| $crate::obs::global().gauge($name, $help))
    }};
}

/// Call-site-cached [`Histogram`] handle in the
/// [`global`](crate::obs::global) registry (see
/// [`obs_counter!`](crate::obs_counter)).
#[macro_export]
macro_rules! obs_histogram {
    ($name:expr, $help:expr $(,)?) => {{
        static __OBS_CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::obs::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__OBS_CELL.get_or_init(|| $crate::obs::global().histogram($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads_and_stripes() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        let c = r.counter("test_obs_threads_total", "t");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn registration_is_idempotent_and_returns_the_same_cells() {
        let r = Registry::new();
        let a = r.counter("test_obs_idem_total", "h");
        let b = r.counter("test_obs_idem_total", "ignored on rehit");
        a.add_always(3);
        assert_eq!(b.value(), 3);
        assert_eq!(r.metrics().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("test_obs_kind", "h");
        let _ = r.gauge("test_obs_kind", "h");
    }

    #[test]
    fn disabled_mode_is_a_no_op_for_gated_paths() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _off = override_enabled(false);
        let r = Registry::new();
        let c = r.counter("test_obs_off_total", "t");
        let g = r.gauge("test_obs_off_gauge", "t");
        let h = r.histogram("test_obs_off_hist", "t");
        c.inc();
        c.add(10);
        g.set(7);
        g.add(7);
        h.record(123);
        drop(h.span());
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        // The always-variants still land: they are the /stats backbone.
        c.add_always(2);
        g.add_always(-3);
        assert_eq!(c.value(), 2);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn histogram_matches_bench_bucketing_and_tracks_sum() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        let h = r.histogram("test_obs_hist_ns", "t");
        let mut reference = bench::Histogram::new();
        for v in [1u64, 7, 100, 5_000, 123_456, 9_999_999] {
            h.record(v);
            reference.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 7 + 100 + 5_000 + 123_456 + 9_999_999);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), reference.percentile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_empty_and_single_sample_edges() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        let h = r.histogram("test_obs_hist_edge", "t");
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.snapshot().min(), None);
        h.record(42);
        // A single sample is every percentile (clamped to min..=max).
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Some(42), "q={q}");
        }
    }

    #[test]
    fn span_records_elapsed_time_when_enabled() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        let h = r.histogram("test_obs_span_ns", "t");
        {
            let _span = h.span();
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn fn_metrics_report_their_callback_value() {
        let source = Arc::new(AtomicU64::new(0));
        let r = Registry::new();
        let reader = Arc::clone(&source);
        let f = r.register_fn("test_obs_fn_total", "t", FnKind::Counter, move || {
            reader.load(Ordering::Relaxed)
        });
        source.store(41, Ordering::Relaxed);
        assert_eq!(f.value(), 41);
        let rendered = render_prometheus(&[&r]);
        assert!(rendered.contains("test_obs_fn_total 41"), "{rendered}");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_well_formed() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        r.counter("test_zz_total", "last").add(1);
        r.counter_with("test_aa_total", &[("algo", "x\"y")], "first")
            .add(2);
        let g = r.gauge("test_mm_depth", "middle\nline");
        g.set(-4);
        let h = r.histogram("test_hh_ns", "hist");
        h.record(1000);
        let text = render_prometheus(&[&r]);
        let lines: Vec<&str> = text.lines().collect();
        // Families arrive sorted; labels escaped; help newline escaped.
        let first_sample = lines.iter().position(|l| !l.starts_with('#')).unwrap();
        assert_eq!(lines[first_sample], "test_aa_total{algo=\"x\\\"y\"} 2");
        assert!(text.contains("# TYPE test_hh_ns summary"));
        assert!(text.contains("test_hh_ns{quantile=\"0.5\"} "));
        assert!(text.contains("test_hh_ns_sum 1000"));
        assert!(text.contains("test_hh_ns_count 1"));
        assert!(text.contains("# HELP test_mm_depth middle\\nline"));
        assert!(text.contains("test_mm_depth -4"));
        assert!(text.ends_with('\n'));
        // Every non-comment line is `name value`.
        for line in lines.iter().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample shape");
            assert!(
                value.parse::<f64>().is_ok() || value == "NaN",
                "bad sample value in {line:?}"
            );
        }
    }

    #[test]
    fn empty_histogram_renders_nan_quantiles() {
        let r = Registry::new();
        let _ = r.histogram("test_empty_hist_ns", "t");
        let text = render_prometheus(&[&r]);
        assert!(text.contains("test_empty_hist_ns{quantile=\"0.5\"} NaN"));
        assert!(text.contains("test_empty_hist_ns_count 0"));
    }

    #[test]
    fn json_dump_covers_every_metric_kind() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = override_enabled(true);
        let r = Registry::new();
        r.counter("test_json_total", "t").add(5);
        r.gauge("test_json_depth", "t").set(-2);
        r.histogram("test_json_ns", "t").record(10);
        r.register_fn("test_json_fn", "t", FnKind::Gauge, || 9);
        let dump = dump_json(&[&r]);
        let text = dump.to_compact();
        let parsed = crate::json::parse(&text).unwrap();
        let metrics = parsed
            .as_object()
            .unwrap()
            .get("metrics")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(metrics.len(), 4);
        let names: Vec<&str> = metrics
            .iter()
            .map(|m| {
                m.as_object()
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(
            names,
            [
                "test_json_depth",
                "test_json_fn",
                "test_json_ns",
                "test_json_total"
            ]
        );
    }

    #[test]
    fn override_guard_restores_previous_state() {
        let _l = TEST_OVERRIDE_LOCK.lock().unwrap();
        let outer = override_enabled(true);
        assert!(enabled());
        {
            let _inner = override_enabled(false);
            assert!(!enabled());
        }
        assert!(enabled());
        drop(outer);
    }

    #[test]
    fn macros_register_in_the_global_registry() {
        let c = crate::obs_counter!("test_obs_macro_total", "macro counter");
        c.add_always(1);
        assert!(global()
            .metrics()
            .iter()
            .any(|m| m.name() == "test_obs_macro_total"));
        let h = crate::obs_histogram!("test_obs_macro_ns", "macro histogram");
        let g = crate::obs_gauge!("test_obs_macro_depth", "macro gauge");
        let _ = (h.count(), g.value());
    }
}
