use std::error::Error;
use std::fmt;

/// Errors produced by the device model.
///
/// Every fallible operation in this crate returns `Result<_, DeviceError>`.
/// The variants carry enough context to pinpoint the offending parameter
/// or access without needing a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A geometry or parameter value failed validation at configuration
    /// time (e.g. zero domains per track, more ports than domains).
    InvalidConfig {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable explanation of the constraint that was violated.
        reason: String,
    },
    /// An access targeted a word offset outside the DBC's data region.
    OffsetOutOfRange {
        /// The requested word offset.
        offset: usize,
        /// Number of addressable words in the DBC.
        capacity: usize,
    },
    /// A port id referenced a port that does not exist in the layout.
    UnknownPort {
        /// The requested port id.
        port: usize,
        /// Number of ports in the layout.
        ports: usize,
    },
    /// A write supplied a word wider than the DBC's track count.
    WordTooWide {
        /// Number of significant bits in the supplied word.
        bits: u32,
        /// Track count (= word width) of the DBC.
        width: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid device configuration: {parameter}: {reason}")
            }
            DeviceError::OffsetOutOfRange { offset, capacity } => {
                write!(
                    f,
                    "word offset {offset} out of range for DBC of {capacity} words"
                )
            }
            DeviceError::UnknownPort { port, ports } => {
                write!(f, "port {port} does not exist (layout has {ports} ports)")
            }
            DeviceError::WordTooWide { bits, width } => {
                write!(
                    f,
                    "word has {bits} significant bits but the DBC is only {width} tracks wide"
                )
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = DeviceError::OffsetOutOfRange {
            offset: 40,
            capacity: 32,
        };
        let msg = err.to_string();
        assert!(msg.contains("40"));
        assert!(msg.contains("32"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DeviceError>();
    }
}
