//! Experiment S20: tiered anytime-portfolio quality/latency tradeoff.
//!
//! The serving path (`dwm-serve`, DESIGN.md §S20) exposes the paper's
//! quality/latency spectrum as three tiers: the greedy CSR fast path
//! (tier 0), windowed local search under a pass budget (tier 1), and
//! the heavy parallel portfolio (tier 2). This sweep runs every
//! benchmark kernel through all three tiers and records, per cell:
//!
//! * the arrangement cost and its reduction vs the naive
//!   order-of-appearance placement;
//! * the winning portfolio member (tier 2 only — provenance the serve
//!   cache records per entry);
//! * the closed-form planner estimate `estimate_us` next to measured
//!   wall-clock, since deadline-driven tier selection trusts the
//!   estimate and only audits the clock after the fact.
//!
//! The binary asserts the anytime ladder cell by cell: each tier is
//! never worse than the one below it, and tier 0 is never worse than
//! naive — the invariant that makes background cache upgrades safe.

use std::time::Instant;

use dwm_core::anytime::{self, AnytimeSolver, Tier};
use dwm_core::Placement;
use dwm_experiments::{percent_reduction, workload_suite, Table, EXPERIMENT_SEED};
use dwm_graph::{AccessGraph, CsrGraph};

fn main() {
    println!(
        "Experiment S20: anytime tier tradeoff per benchmark \
         (costs are single-port arrangement shifts)\n"
    );
    let mut t = Table::new([
        "benchmark",
        "items",
        "edges",
        "naive",
        "tier0",
        "tier1",
        "tier2",
        "tier2 winner",
        "est t0/t1 (us)",
        "measured t0/t1/t2 (us)",
    ]);

    let solver = AnytimeSolver::new(EXPERIMENT_SEED);
    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let csr = CsrGraph::freeze(&graph);
        let (n, m) = (graph.num_items(), graph.num_edges());
        let naive = csr.arrangement_cost(Placement::identity(n).offsets());

        let mut outcomes = Vec::new();
        let mut measured = Vec::new();
        // The heuristic ladder only: tier 3 (exact) is size-bounded
        // and falls back to the tier-2 portfolio past 12 items, so it
        // adds nothing on these benchmarks.
        for tier in [Tier::Fast, Tier::Refined, Tier::Thorough] {
            let started = Instant::now();
            let outcome = solver.solve_frozen(&graph, &csr, tier, anytime::MAX_PASSES);
            measured.push(started.elapsed().as_micros());
            outcomes.push(outcome);
        }

        // The anytime ladder: each tier at least matches the one
        // below, and tier 0 at least matches naive. Background cache
        // upgrades in dwm-serve are sound *because* of this chain.
        assert!(
            outcomes[0].cost <= naive
                && outcomes[1].cost <= outcomes[0].cost
                && outcomes[2].cost <= outcomes[1].cost,
            "anytime ladder violated on {name}: naive {naive}, tiers {:?}",
            outcomes.iter().map(|o| o.cost).collect::<Vec<_>>(),
        );

        t.row([
            name.clone(),
            n.to_string(),
            m.to_string(),
            naive.to_string(),
            format!(
                "{} ({})",
                outcomes[0].cost,
                percent_reduction(naive, outcomes[0].cost)
            ),
            format!(
                "{} ({})",
                outcomes[1].cost,
                percent_reduction(naive, outcomes[1].cost)
            ),
            format!(
                "{} ({})",
                outcomes[2].cost,
                percent_reduction(naive, outcomes[2].cost)
            ),
            outcomes[2].solver.to_string(),
            format!(
                "{}/{}",
                anytime::estimate_us(Tier::Fast, n, m),
                anytime::estimate_us(Tier::Refined, n, m)
            ),
            format!("{}/{}/{}", measured[0], measured[1], measured[2]),
        ]);
    }
    t.print();
    println!(
        "\nladder held on every benchmark: tier2 <= tier1 <= tier0 <= naive \
         (wall-clock columns vary by host; costs and winners are deterministic)"
    );
}
