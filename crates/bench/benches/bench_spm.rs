//! T5: multi-DBC scratchpad allocation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dwm_bench::matmul_fixture;
use dwm_core::partition::Objective;
use dwm_core::spm::SpmAllocator;
use dwm_core::GroupedChainGrowth;

fn spm_allocation(c: &mut Criterion) {
    let (trace, _) = matmul_fixture();
    let alloc = SpmAllocator::new(4, 16);
    let mut group = c.benchmark_group("spm_allocation");
    group.bench_with_input(
        BenchmarkId::from_parameter("round_robin"),
        &trace,
        |b, t| b.iter(|| alloc.allocate_round_robin(t.num_items()).expect("fits")),
    );
    group.bench_with_input(BenchmarkId::from_parameter("affinity"), &trace, |b, t| {
        b.iter(|| {
            alloc
                .allocate_with_objective(t, &GroupedChainGrowth, Objective::MinimizeExternal)
                .expect("fits")
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("anti_affinity"),
        &trace,
        |b, t| b.iter(|| alloc.allocate(t, &GroupedChainGrowth).expect("fits")),
    );
    group.finish();
}

criterion_group!(benches, spm_allocation);
criterion_main!(benches);
