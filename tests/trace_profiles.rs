//! Profile → synthesis fidelity: `ProfiledGen` replays must look like
//! their source workloads.
//!
//! The profiling pipeline promises that a compact [`TraceProfile`]
//! captures enough of a workload's shape — kernel mix, popularity
//! skew, reuse-distance distribution, self-transition rate — that a
//! synthetic replay is statistically interchangeable with the source,
//! at the source length *and* scaled far past it, all in `O(profile)`
//! memory. These tests pin that contract end to end:
//!
//! * re-profiling a same-length replay stays within the default
//!   fidelity tolerances for every source family;
//! * scaling the replay 10× (and, under `DWM_SCALE_TEST=1`, to 10⁸
//!   accesses) preserves the profile without materializing a trace;
//! * seed → trace is byte-deterministic and invariant under
//!   `DWM_THREADS` (generation is a single sequential RNG walk).

use std::sync::Mutex;

use dwm_placement::prelude::*;
use dwm_placement::trace::synth::TraceGenerator;

/// `DWM_THREADS` is process-global; tests that flip it must not
/// interleave (mirrors `tests/parallel.rs`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("DWM_THREADS", threads.to_string());
    let result = f();
    std::env::remove_var("DWM_THREADS");
    result
}

/// The source workload families the profile corpus covers: real
/// kernels plus the synthetic generators whose shapes bracket them
/// (clustered Markov walks, Zipf skew, phase churn, write-heavy
/// uniform noise). Sources are long enough that a *same-length*
/// replay has usable statistics — very short kernel traces (e.g. a
/// 90-access blocked matmul) can only be compared after scaling,
/// which is exactly what profile-driven synthesis is for.
fn sources() -> Vec<(&'static str, Trace)> {
    vec![
        ("fft", Kernel::Fft { n: 256, block: 4 }.trace().normalize()),
        (
            "bfs",
            Kernel::Bfs {
                nodes: 512,
                degree: 8,
                seed: 7,
            }
            .trace()
            .normalize(),
        ),
        (
            "zipf",
            ZipfGen::new(256, 0xA11CE).generate(40_000).normalize(),
        ),
        (
            "markov",
            MarkovGen::new(64, 4, 0xBEEC).generate(40_000).normalize(),
        ),
        (
            "phased",
            PhasedGen::new(128, 4, 11).generate(40_000).normalize(),
        ),
        (
            "uniform-rw",
            UniformGen {
                items: 128,
                write_ratio: 0.3,
                seed: 4,
            }
            .generate(40_000)
            .normalize(),
        ),
    ]
}

/// Profiles a stream without materializing it.
fn profile_stream(
    label: &str,
    accesses: impl Iterator<Item = Access>,
    window: usize,
) -> TraceProfile {
    let mut builder = ProfileBuilder::new(label, window);
    for a in accesses {
        builder.push(a);
    }
    builder.finish()
}

#[test]
fn replays_match_their_source_profile_within_tolerance() {
    for (name, trace) in sources() {
        let profile = TraceProfile::from_trace(&trace);
        let replay = ProfiledGen::new(profile.clone(), 0x5EED).generate(trace.len());
        let re = TraceProfile::from_trace(&replay);
        let fidelity = profile.fidelity(&re);
        assert!(
            fidelity.within_default_tolerance(),
            "{name}: same-length replay drifted from its source profile: {fidelity:?}"
        );
    }
}

#[test]
fn scaled_replays_preserve_the_profile() {
    for (name, trace) in sources() {
        let profile = TraceProfile::from_trace(&trace);
        let scaled_len = trace.len() as u64 * 10;
        let gen = ProfiledGen::new(profile.clone(), 0x5EED);
        // Stream, never collect: the whole point of scaling is that a
        // 10× (or 10⁸) replay needs O(profile) memory, not O(length).
        let re = profile_stream(name, gen.stream(scaled_len), 4096);
        assert_eq!(re.length, scaled_len);
        let fidelity = profile.fidelity(&re);
        assert!(
            fidelity.within_default_tolerance(),
            "{name}: 10x replay drifted from its source profile: {fidelity:?}"
        );
    }
}

/// The headline scale point. Default is a 2M-access smoke run so CI
/// stays fast; set `DWM_SCALE_TEST=1` for the full 10⁸-access stream
/// (a few minutes, still O(profile) memory).
#[test]
fn large_scale_stream_is_faithful_in_profile_memory() {
    let len: u64 = if std::env::var("DWM_SCALE_TEST").is_ok() {
        100_000_000
    } else {
        2_000_000
    };
    let source = MarkovGen::new(128, 8, 0xBEEC).generate(40_000).normalize();
    let profile = TraceProfile::from_trace(&source);
    let gen = ProfiledGen::new(profile.clone(), 0xFEED0);
    let re = profile_stream("markov-scale", gen.stream(len), 4096);
    assert_eq!(re.length, len);
    assert_eq!(re.items, profile.items);
    let fidelity = profile.fidelity(&re);
    assert!(
        fidelity.within_default_tolerance(),
        "scaled stream ({len} accesses) drifted: {fidelity:?}"
    );
}

#[test]
fn profiled_generation_is_byte_deterministic_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let source = ZipfGen::new(128, 3).generate(20_000).normalize();
    let profile = TraceProfile::from_trace(&source);
    let render = || {
        let gen = ProfiledGen::new(profile.clone(), 42);
        dwm_placement::trace::io::to_json(&gen.generate(50_000))
    };
    let single = with_threads(1, render);
    let wide = with_threads(8, render);
    assert_eq!(single, wide, "seed->trace must not depend on DWM_THREADS");
    // Same seed twice: byte-identical. Different seed: a different
    // trace with the same statistical shape.
    assert_eq!(single, with_threads(1, render));
    let other = ProfiledGen::new(profile.clone(), 43).generate(50_000);
    assert_ne!(
        dwm_placement::trace::io::to_json(&other),
        single,
        "distinct seeds must decorrelate"
    );
    let fidelity = profile.fidelity(&TraceProfile::from_trace(&other.normalize()));
    assert!(fidelity.within_default_tolerance(), "{fidelity:?}");
}

#[test]
fn stream_and_generate_agree_access_for_access() {
    let source = Kernel::MatMul { n: 10, block: 2 }.trace().normalize();
    let profile = TraceProfile::from_trace(&source);
    let gen = ProfiledGen::new(profile, 9);
    let streamed: Vec<Access> = gen.stream(10_000).collect();
    let generated: Vec<Access> = gen.generate(10_000).iter().copied().collect();
    assert_eq!(streamed, generated);
}
