//! The JSON value tree and its serializer.

use std::fmt;

/// A JSON number.
///
/// Integers are kept exact (no round-trip through `f64`), which
/// matters for shift counters that can exceed 2^53 on long traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A nonnegative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A floating-point number.
    F(f64),
}

impl Number {
    /// The number as `u64`, if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v <= u64::MAX as f64 && v.fract() == 0.0 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }

    /// The number as `f64` (integers may round).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

/// A JSON object: ordered key → value pairs.
///
/// Insertion order is preserved, so a struct serialized field-by-field
/// always produces the same byte sequence — the determinism guarantee
/// the experiment reports rely on.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    entries: Vec<(String, Value)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Appends a key/value pair (keys are not deduplicated).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// The first value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Object {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Object {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(Object),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Object> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline, for files meant to be read or diffed.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Obj(obj) => {
            if obj.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use std::fmt::Write as _;
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) if v.is_finite() => {
            // `{:?}` prints the shortest representation that parses
            // back to the same f64, keeping a decimal point or
            // exponent so the value stays a float on re-parse.
            let _ = write!(out, "{v:?}");
        }
        // JSON has no NaN/Infinity; follow serde_json's lenient
        // writers and emit null.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_serialization_shapes() {
        let mut obj = Object::new();
        obj.insert("a", Value::Num(Number::U(1)));
        obj.insert("b", Value::Arr(vec![Value::Null, Value::Bool(true)]));
        obj.insert("c", Value::Str("x\"y".into()));
        let v = Value::Obj(obj);
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[null,true],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_serialization_indents() {
        let mut obj = Object::new();
        obj.insert("k", Value::Arr(vec![Value::Num(Number::I(-2))]));
        let pretty = Value::Obj(obj).to_pretty();
        assert_eq!(pretty, "{\n  \"k\": [\n    -2\n  ]\n}\n");
    }

    #[test]
    fn floats_keep_their_floatness() {
        assert_eq!(Value::Num(Number::F(1.0)).to_compact(), "1.0");
        assert_eq!(Value::Num(Number::F(0.5)).to_compact(), "0.5");
        assert_eq!(Value::Num(Number::F(f64::NAN)).to_compact(), "null");
    }

    #[test]
    fn number_conversions_are_exact() {
        assert_eq!(Number::U(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::U(u64::MAX).as_i64(), None);
        assert_eq!(Number::I(-1).as_u64(), None);
        assert_eq!(Number::F(3.0).as_u64(), Some(3));
        assert_eq!(Number::F(3.5).as_i64(), None);
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = Value::Str("\u{01}\n".into());
        assert_eq!(v.to_compact(), "\"\\u0001\\n\"");
    }

    #[test]
    fn object_lookup_and_order() {
        let mut obj = Object::new();
        obj.insert("x", Value::Null);
        obj.insert("y", Value::Bool(false));
        assert_eq!(obj.get("y"), Some(&Value::Bool(false)));
        assert_eq!(obj.get("z"), None);
        let keys: Vec<&str> = obj.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["x", "y"]);
    }
}
