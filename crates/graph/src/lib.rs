//! Weighted access graphs for DWM data placement.
//!
//! The *access graph* of a trace has one vertex per data item and an
//! undirected edge `{u, v}` weighted by the number of times `u` and `v`
//! are accessed consecutively. Under the single-port tape model the
//! total shift count of a placement `π` equals
//!
//! ```text
//! Σ_{(u,v)} w(u,v) · |π(u) − π(v)|     (+ first-access alignment)
//! ```
//!
//! — the *linear arrangement cost* of `π` on this graph. Minimizing it
//! is the NP-hard minimum linear arrangement problem, which is why the
//! placement crate layers heuristics, spectral methods, and an exact DP
//! on top of the queries this crate provides.
//!
//! # Example
//!
//! ```
//! use dwm_trace::Trace;
//! use dwm_graph::AccessGraph;
//!
//! let trace = Trace::from_ids([0u32, 1, 0, 1, 2]);
//! let graph = AccessGraph::from_trace(&trace);
//! assert_eq!(graph.weight(0, 1), 3);
//! assert_eq!(graph.weight(1, 2), 1);
//! assert_eq!(graph.total_weight(), 4);
//! // Identity arrangement: |0−1|·3 + |1−2|·1 = 4.
//! let order: Vec<usize> = (0..3).collect();
//! assert_eq!(graph.arrangement_cost(&order), 4);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod csr;
pub mod delta;
pub mod fingerprint;
pub mod generators;
mod graph;

pub use csr::{ArrangementEval, CsrGraph};
pub use delta::DeltaGraph;
pub use fingerprint::{fingerprint, fingerprint_retag, fingerprint_topology, Fingerprint};
pub use graph::{AccessGraph, Edge};

/// Registers this crate's metrics in the
/// [`dwm_foundation::obs::global`] registry, so a scrape lists the
/// full family (at zero) before any solver has run.
pub fn register_obs_metrics() {
    let _ = csr::delta_eval_counter();
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::generators::{clustered_graph, path_graph, random_graph};
    pub use crate::{
        fingerprint, fingerprint_topology, AccessGraph, ArrangementEval, CsrGraph, DeltaGraph,
        Edge, Fingerprint,
    };
}
