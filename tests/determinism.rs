//! End-to-end determinism: the same seed must produce byte-identical
//! JSON artifacts every time.
//!
//! This pins the whole pipeline — seeded kernel trace generation,
//! graph construction, placement, and bit-level simulation — to the
//! deterministic contract of `dwm-foundation` (fixed PRNG stream,
//! insertion-ordered JSON objects, exact integer serialization). A
//! difference between two runs here means some component picked up
//! ambient entropy or an iteration order that is not stable.

use dwm_placement::core::algorithms::standard_suite;
use dwm_placement::prelude::*;
use dwm_placement::trace::io;
use dwm_placement::trace::kernels::Kernel;

const SEED: u64 = 0xD00D;

/// One full pipeline pass: kernel trace → placement → simulator
/// report, each serialized to JSON.
fn pipeline(seed: u64) -> (String, String, String) {
    let trace = Kernel::InsertionSort { n: 24, seed }.trace().normalize();
    let trace_json = io::to_json(&trace);

    let graph = AccessGraph::from_trace(&trace);
    let placement = SimulatedAnnealing::new(seed).place(&graph);
    let placement_json = dwm_foundation::json::to_string_pretty(&placement);

    let config = DeviceConfig::builder()
        .domains_per_track(graph.num_items().max(1))
        .tracks_per_dbc(8)
        .build()
        .expect("valid");
    let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
    let report = sim.run(&trace).expect("replay");
    let report_json = dwm_foundation::json::to_string(&report);

    (trace_json, placement_json, report_json)
}

#[test]
fn same_seed_produces_byte_identical_artifacts() {
    let (trace_a, placement_a, report_a) = pipeline(SEED);
    let (trace_b, placement_b, report_b) = pipeline(SEED);
    assert_eq!(trace_a, trace_b, "kernel trace JSON differs between runs");
    assert_eq!(
        placement_a, placement_b,
        "placement JSON differs between runs"
    );
    assert_eq!(
        report_a, report_b,
        "simulator report JSON differs between runs"
    );
}

#[test]
fn different_seeds_produce_different_traces() {
    // Sanity check that the seed actually reaches the generator — a
    // pipeline that ignored its seed would pass the identity test
    // vacuously.
    let (trace_a, _, _) = pipeline(SEED);
    let (trace_b, _, _) = pipeline(SEED + 1);
    assert_ne!(trace_a, trace_b, "seed does not influence the kernel trace");
}

#[test]
fn artifacts_parse_back_losslessly() {
    let (trace_json, placement_json, _) = pipeline(SEED);
    let trace = io::from_json(&trace_json).expect("trace JSON parses");
    assert_eq!(io::to_json(&trace), trace_json);
    let placement: Placement =
        dwm_foundation::json::from_str(&placement_json).expect("placement JSON parses");
    assert_eq!(
        dwm_foundation::json::to_string_pretty(&placement),
        placement_json
    );
}

/// Every placement algorithm in the standard suite is deterministic
/// for a fixed seed.
#[test]
fn standard_suite_is_deterministic() {
    let trace = Kernel::InsertionSort { n: 32, seed: SEED }
        .trace()
        .normalize();
    let graph = AccessGraph::from_trace(&trace);
    for alg in standard_suite(7) {
        let a = dwm_foundation::json::to_string(&alg.place(&graph));
        let b = dwm_foundation::json::to_string(&alg.place(&graph));
        assert_eq!(a, b, "{} is not deterministic", alg.name());
    }
}
