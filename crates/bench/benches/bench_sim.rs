//! F6/V1: bit-level simulator replay throughput vs. the analytic model.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dwm_bench::matmul_fixture;
use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_device::DeviceConfig;
use dwm_sim::SpmSimulator;

fn analytic_vs_bit_level(c: &mut Criterion) {
    let (trace, graph) = matmul_fixture();
    let placement = Hybrid::default().place(&graph);
    let config = DeviceConfig::builder()
        .domains_per_track(graph.num_items())
        .tracks_per_dbc(32)
        .build()
        .expect("valid");

    let mut group = c.benchmark_group("replay");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("analytic", |b| {
        let model = SinglePortCost::new();
        b.iter(|| model.trace_cost(std::hint::black_box(&placement), &trace))
    });
    group.bench_function("bit_level_sim", |b| {
        b.iter(|| {
            let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
            sim.run(std::hint::black_box(&trace)).expect("replay")
        })
    });
    group.finish();
}

criterion_group!(benches, analytic_vs_bit_level);
criterion_main!(benches);
