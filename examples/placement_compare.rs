//! Compare the full algorithm suite on one benchmark kernel.
//!
//! ```text
//! cargo run --release --example placement_compare [kernel]
//! ```
//!
//! `kernel` is one of: matmul, fft, insertion-sort, merge-sort,
//! stencil2d, histogram, lu, bfs (default: histogram).

use dwm_placement::core::algorithms::standard_suite;
use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "histogram".into());
    let kernel = Kernel::suite()
        .into_iter()
        .find(|k| k.name() == wanted)
        .ok_or_else(|| {
            format!(
                "unknown kernel {wanted:?}; choose from: {}",
                Kernel::suite()
                    .iter()
                    .map(|k| k.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;

    let trace = kernel.trace();
    let graph = AccessGraph::from_trace(&trace);
    println!("{}: {}\n", kernel.name(), trace.stats());

    let model = SinglePortCost::new();
    let config = DeviceConfig::default();
    let projection = CostProjection::new(&config);

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "shifts", "cycles", "energy (nJ)", "vs naive"
    );
    let naive = model
        .trace_cost(&Placement::identity(graph.num_items()), &trace)
        .stats
        .shifts;
    for alg in standard_suite(42) {
        let stats = model.trace_cost(&alg.place(&graph), &trace).stats;
        println!(
            "{:<16} {:>10} {:>12} {:>12.2} {:>9.1}%",
            alg.name(),
            stats.shifts,
            projection.latency(&stats).total_cycles(),
            projection.energy(&stats).total_nj(),
            100.0 * (naive as f64 - stats.shifts as f64) / naive as f64
        );
    }
    Ok(())
}
