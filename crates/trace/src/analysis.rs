//! Trace analysis: reuse distance, working sets, and phase detection.
//!
//! These analyses characterize *why* a placement helps on a given
//! workload (locality structure) and drive the online/adaptive
//! placement in `dwm-core`: phase boundaries are where re-placing data
//! pays for its migration cost.

use std::collections::BTreeMap;

use crate::access::Trace;

/// Reuse-distance histogram: for each access, the number of *distinct*
/// items touched since the previous access to the same item
/// (∞/cold for first touches).
///
/// Computed with the classic stack algorithm over a Vec "LRU stack" —
/// `O(T · D)` where `D` is the mean stack depth, plenty for the trace
/// sizes this workspace handles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of accesses with reuse distance `d`.
    pub histogram: Vec<u64>,
    /// Number of cold (first-touch) accesses.
    pub cold_accesses: u64,
}

impl ReuseProfile {
    /// Computes the reuse-distance profile of `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut stack: Vec<u32> = Vec::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for a in trace.iter() {
            match stack.iter().rposition(|&x| x == a.item.0) {
                Some(pos) => {
                    let distance = stack.len() - 1 - pos;
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    stack.remove(pos);
                    stack.push(a.item.0);
                }
                None => {
                    cold += 1;
                    stack.push(a.item.0);
                }
            }
        }
        ReuseProfile {
            histogram,
            cold_accesses: cold,
        }
    }

    /// Total accesses with a finite reuse distance.
    pub fn reuses(&self) -> u64 {
        self.histogram.iter().sum()
    }

    /// Mean finite reuse distance (0 when there are no reuses).
    pub fn mean_distance(&self) -> f64 {
        let total = self.reuses();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }

    /// Fraction of reuses with distance < `d` — the hit ratio of a
    /// fully associative LRU buffer of `d` items.
    pub fn hit_ratio(&self, d: usize) -> f64 {
        let total = self.reuses() + self.cold_accesses;
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(d).sum();
        hits as f64 / total as f64
    }
}

/// Sizes of the working set (distinct items) over fixed-length windows.
pub fn working_set_curve(trace: &Trace, window: usize) -> Vec<usize> {
    assert!(window > 0, "window must be nonzero");
    trace
        .accesses()
        .chunks(window)
        .map(|chunk| {
            let mut items: Vec<u32> = chunk.iter().map(|a| a.item.0).collect();
            items.sort_unstable();
            items.dedup();
            items.len()
        })
        .collect()
}

/// Detects phase boundaries: indices (in accesses) where the item-
/// frequency distribution of consecutive windows diverges by more than
/// `threshold` (total-variation distance in `[0, 1]`).
///
/// # Example
///
/// ```
/// use dwm_trace::{Trace, analysis::detect_phases};
///
/// // 100 accesses to items 0..4, then 100 accesses to items 10..14.
/// let mut ids: Vec<u32> = (0..100).map(|i| i % 4).collect();
/// ids.extend((0..100).map(|i| 10 + i % 4));
/// let trace = Trace::from_ids(ids);
/// let phases = detect_phases(&trace, 50, 0.5);
/// assert_eq!(phases, vec![100]);
/// ```
pub fn detect_phases(trace: &Trace, window: usize, threshold: f64) -> Vec<usize> {
    assert!(window > 0, "window must be nonzero");
    let chunks: Vec<&[crate::access::Access]> = trace.accesses().chunks(window).collect();
    let mut boundaries = Vec::new();
    for (i, pair) in chunks.windows(2).enumerate() {
        if total_variation(pair[0], pair[1]) > threshold {
            boundaries.push((i + 1) * window);
        }
    }
    boundaries
}

fn window_counts(chunk: &[crate::access::Access]) -> BTreeMap<u32, u64> {
    let mut m = BTreeMap::new();
    for acc in chunk {
        *m.entry(acc.item.0).or_insert(0u64) += 1;
    }
    m
}

fn total_variation(a: &[crate::access::Access], b: &[crate::access::Access]) -> f64 {
    total_variation_counts(&window_counts(a), a.len(), &window_counts(b), b.len())
}

/// Total-variation distance between two windows given their item
/// counts. Keys are visited in ascending item order (both maps are
/// ordered), so the floating-point summation order — and therefore
/// every threshold comparison downstream — is deterministic.
fn total_variation_counts(
    a: &BTreeMap<u32, u64>,
    a_len: usize,
    b: &BTreeMap<u32, u64>,
    b_len: usize,
) -> f64 {
    let mut ai = a.iter().peekable();
    let mut bi = b.iter().peekable();
    let mut sum = 0.0f64;
    let norm = |count: u64, len: usize| count as f64 / len as f64;
    loop {
        match (ai.peek(), bi.peek()) {
            (Some((&ka, &ca)), Some((&kb, &cb))) => {
                if ka < kb {
                    sum += norm(ca, a_len);
                    ai.next();
                } else if kb < ka {
                    sum += norm(cb, b_len);
                    bi.next();
                } else {
                    sum += (norm(ca, a_len) - norm(cb, b_len)).abs();
                    ai.next();
                    bi.next();
                }
            }
            (Some((_, &ca)), None) => {
                sum += norm(ca, a_len);
                ai.next();
            }
            (None, Some((_, &cb))) => {
                sum += norm(cb, b_len);
                bi.next();
            }
            (None, None) => break,
        }
    }
    0.5 * sum
}

/// Streaming phase-change detector: the incremental counterpart of
/// [`detect_phases`], for consumers that see the trace arrive in
/// arbitrary chunks (the `dwm-serve` session subsystem).
///
/// Accesses are pushed one at a time; every `window` accesses the
/// detector compares the completed window's item-frequency distribution
/// against the previous window's (total-variation distance, same rule
/// as [`detect_phases`]) and reports a *confirmed* boundary once
/// `confirm` consecutive comparisons diverge — `confirm = 1` (the
/// default) makes it equivalent to the offline function, higher values
/// add hysteresis against one-window blips. [`finish`] mirrors the
/// offline treatment of the trailing partial window.
///
/// The equivalence is exact and chunking-independent: feeding any
/// trace through `push` (however it was split) plus one `finish`
/// yields precisely `detect_phases(trace, window, threshold)` when
/// `confirm == 1` — pinned by the test suite.
///
/// [`finish`]: PhaseDetector::finish
///
/// # Example
///
/// ```
/// use dwm_trace::analysis::PhaseDetector;
///
/// let mut det = PhaseDetector::new(50, 0.5);
/// let mut boundaries = Vec::new();
/// for i in 0..100u32 {
///     boundaries.extend(det.push(i % 4));
/// }
/// for i in 0..100u32 {
///     boundaries.extend(det.push(10 + i % 4));
/// }
/// boundaries.extend(det.finish());
/// assert_eq!(boundaries, vec![100]);
/// ```
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    window: usize,
    threshold: f64,
    confirm: usize,
    /// Item counts of the last *complete* window, if any.
    prev: Option<BTreeMap<u32, u64>>,
    /// Item counts of the window being filled.
    current: BTreeMap<u32, u64>,
    current_len: usize,
    /// Consecutive diverging window comparisons seen so far.
    streak: usize,
    /// Total accesses pushed.
    accesses: usize,
    /// Divergences observed (before confirmation), for stats.
    divergences: u64,
}

impl PhaseDetector {
    /// A detector comparing `window`-access frequency distributions
    /// against `threshold`, confirming on the first divergence.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, threshold: f64) -> Self {
        assert!(window > 0, "window must be nonzero");
        PhaseDetector {
            window,
            threshold,
            confirm: 1,
            prev: None,
            current: BTreeMap::new(),
            current_len: 0,
            streak: 0,
            accesses: 0,
            divergences: 0,
        }
    }

    /// Requires `confirm` consecutive diverging windows before a
    /// boundary is reported (1 = report immediately).
    ///
    /// # Panics
    ///
    /// Panics if `confirm` is zero.
    pub fn with_confirm(mut self, confirm: usize) -> Self {
        assert!(confirm > 0, "confirm must be nonzero");
        self.confirm = confirm;
        self
    }

    /// The window length in accesses.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total accesses pushed so far.
    pub fn accesses(&self) -> usize {
        self.accesses
    }

    /// Window comparisons that diverged (whether or not confirmed).
    pub fn divergences(&self) -> u64 {
        self.divergences
    }

    /// Feeds one access. Returns the confirmed phase boundary (an
    /// access index, as in [`detect_phases`]) completed by this access,
    /// if any.
    pub fn push(&mut self, item: u32) -> Option<usize> {
        *self.current.entry(item).or_insert(0) += 1;
        self.current_len += 1;
        self.accesses += 1;
        if self.current_len < self.window {
            return None;
        }
        let counts = std::mem::take(&mut self.current);
        self.current_len = 0;
        self.compare_and_roll(counts, self.window)
    }

    /// Feeds a chunk of accesses, collecting every confirmed boundary.
    pub fn push_chunk(&mut self, items: impl IntoIterator<Item = u32>) -> Vec<usize> {
        items.into_iter().filter_map(|i| self.push(i)).collect()
    }

    /// Evaluates the trailing partial window (if any) against the last
    /// complete one, exactly as [`detect_phases`] compares its final
    /// short chunk. A pure query: the detector is untouched, so it can
    /// be consulted at any point of the stream and pushed into again.
    pub fn finish(&self) -> Option<usize> {
        if self.current_len == 0 {
            return None;
        }
        let prev = self.prev.as_ref()?;
        let tv = total_variation_counts(prev, self.window, &self.current, self.current_len);
        (tv > self.threshold && self.streak + 1 >= self.confirm)
            .then(|| self.accesses - self.current_len)
    }

    /// Compares a just-completed window against the previous one and
    /// rolls the window state. `len` is the completed window's length.
    fn compare_and_roll(&mut self, counts: BTreeMap<u32, u64>, len: usize) -> Option<usize> {
        let boundary = match self.prev.as_ref() {
            Some(prev) => {
                let tv = total_variation_counts(prev, self.window, &counts, len);
                if tv > self.threshold {
                    self.divergences += 1;
                    self.streak += 1;
                    // The boundary sits where the diverging window
                    // began — matching detect_phases' (i + 1) · window.
                    (self.streak >= self.confirm).then(|| {
                        self.streak = 0;
                        self.accesses - len
                    })
                } else {
                    self.streak = 0;
                    None
                }
            }
            None => None,
        };
        self.prev = Some(counts);
        boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{SequentialGen, TraceGenerator, UniformGen, ZipfGen};

    #[test]
    fn sequential_reuse_distance_is_items_minus_one() {
        let t = SequentialGen::new(8).generate(80);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold_accesses, 8);
        // Every reuse of a sequential sweep has distance n−1 = 7.
        assert_eq!(p.histogram.len(), 8);
        assert_eq!(p.histogram[7], 72);
        assert!((p.mean_distance() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_item_has_zero_distance() {
        let t = Trace::from_ids([1u32, 1, 1, 1]);
        let p = ReuseProfile::compute(&t);
        assert_eq!(p.cold_accesses, 1);
        assert_eq!(p.histogram[0], 3);
    }

    #[test]
    fn hit_ratio_is_monotone_in_buffer_size() {
        let t = ZipfGen::new(32, 5).generate(2000);
        let p = ReuseProfile::compute(&t);
        let mut last = 0.0;
        for d in [1usize, 2, 4, 8, 16, 32] {
            let h = p.hit_ratio(d);
            assert!(h >= last);
            last = h;
        }
        assert!(p.hit_ratio(32) > 0.9);
    }

    #[test]
    fn zipf_has_shorter_mean_reuse_than_uniform() {
        let z = ReuseProfile::compute(&ZipfGen::new(32, 5).generate(4000));
        let u = ReuseProfile::compute(&UniformGen::new(32, 5).generate(4000));
        assert!(z.mean_distance() < u.mean_distance());
    }

    #[test]
    fn working_set_curve_reflects_footprint() {
        let t = SequentialGen::new(4).generate(40);
        assert_eq!(working_set_curve(&t, 8), vec![4; 5]);
        let tight = Trace::from_ids([0u32; 16]);
        assert_eq!(working_set_curve(&tight, 8), vec![1, 1]);
    }

    #[test]
    fn stable_workload_has_no_phases() {
        let t = UniformGen::new(16, 9).generate(1000);
        assert!(detect_phases(&t, 100, 0.6).is_empty());
    }

    #[test]
    fn phase_change_is_detected_at_boundary() {
        let mut ids: Vec<u32> = (0..300).map(|i| i % 8).collect();
        ids.extend((0..300).map(|i| 20 + i % 8));
        let t = Trace::from_ids(ids);
        let phases = detect_phases(&t, 100, 0.5);
        assert_eq!(phases, vec![300]);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_rejected() {
        let _ = working_set_curve(&Trace::from_ids([0u32]), 0);
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = ReuseProfile::compute(&Trace::new());
        assert_eq!(p.cold_accesses, 0);
        assert_eq!(p.reuses(), 0);
        assert_eq!(p.mean_distance(), 0.0);
        assert_eq!(p.hit_ratio(8), 0.0);
    }

    /// Streams `trace` through a detector in chunks of `chunk` accesses
    /// and collects every boundary, including the trailing-window check.
    fn stream_boundaries(trace: &Trace, window: usize, threshold: f64, chunk: usize) -> Vec<usize> {
        let mut det = PhaseDetector::new(window, threshold);
        let mut out = Vec::new();
        for ids in trace
            .accesses()
            .chunks(chunk)
            .map(|c| c.iter().map(|a| a.item.0).collect::<Vec<_>>())
        {
            out.extend(det.push_chunk(ids));
        }
        out.extend(det.finish());
        out
    }

    #[test]
    fn streaming_detector_matches_offline_under_any_chunking() {
        // A mix of stable and shifting workloads, including a trailing
        // partial window that only `finish` can see.
        let mut ids: Vec<u32> = (0..230).map(|i| i % 6).collect();
        ids.extend((0..170).map(|i| 40 + i % 6));
        ids.extend((0..95).map(|i| 80 + i % 3));
        let trace = Trace::from_ids(ids);
        for window in [50usize, 64, 100] {
            let offline = detect_phases(&trace, window, 0.5);
            assert!(!offline.is_empty(), "fixture must contain a phase change");
            for chunk in [1usize, 7, 50, 64, 1000] {
                assert_eq!(
                    stream_boundaries(&trace, window, 0.5, chunk),
                    offline,
                    "window {window}, chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn streaming_detector_matches_offline_on_random_traces() {
        let trace = churning_markov_trace();
        for window in [32usize, 75] {
            for threshold in [0.3f64, 0.5, 0.8] {
                let offline = detect_phases(&trace, window, threshold);
                assert_eq!(
                    stream_boundaries(&trace, window, threshold, 13),
                    offline,
                    "window {window}, threshold {threshold}"
                );
            }
        }
    }

    /// A phase-churning random trace for the equivalence sweep.
    fn churning_markov_trace() -> Trace {
        let mut ids = Vec::new();
        for phase in 0..5u32 {
            let t = crate::synth::MarkovGen::new(24, 4, u64::from(phase) + 3).generate(333);
            ids.extend(t.iter().map(|a| a.item.0 + phase * 3));
        }
        Trace::from_ids(ids)
    }

    #[test]
    fn confirm_count_adds_hysteresis() {
        // Alternating phases every window: each comparison diverges.
        let mut ids: Vec<u32> = Vec::new();
        for phase in 0..6 {
            let base = if phase % 2 == 0 { 0 } else { 50 };
            ids.extend((0..100).map(|i| base + i % 4));
        }
        let eager: Vec<usize> = {
            let mut det = PhaseDetector::new(100, 0.5);
            ids.iter().filter_map(|&i| det.push(i)).collect()
        };
        assert_eq!(eager, vec![100, 200, 300, 400, 500]);
        // confirm = 2 needs two diverging comparisons in a row; every
        // comparison diverges here, so boundaries fire on alternating
        // windows (streak resets after each confirmation).
        let damped: Vec<usize> = {
            let mut det = PhaseDetector::new(100, 0.5).with_confirm(2);
            ids.iter().filter_map(|&i| det.push(i)).collect()
        };
        assert_eq!(damped, vec![200, 400]);
        // A stable workload never confirms at any setting.
        let mut det = PhaseDetector::new(100, 0.5).with_confirm(2);
        let stable: Vec<usize> = (0..1000u32).filter_map(|i| det.push(i % 4)).collect();
        assert!(stable.is_empty());
        assert_eq!(det.accesses(), 1000);
        assert_eq!(det.divergences(), 0);
    }

    #[test]
    fn finish_is_a_pure_query() {
        let mut det = PhaseDetector::new(10, 0.5);
        for i in 0..10u32 {
            assert!(det.push(i % 2).is_none());
        }
        for _ in 0..5 {
            assert!(det.push(40).is_none());
        }
        // Trailing partial window diverges; finish sees it without
        // consuming it.
        assert_eq!(det.finish(), Some(10));
        assert_eq!(det.finish(), Some(10), "repeat finish is stable");
        for _ in 0..5 {
            let _ = det.push(41);
        }
        // The window completed; the boundary now arrives via push.
        assert_eq!(det.accesses(), 20);
    }

    #[test]
    #[should_panic(expected = "confirm must be nonzero")]
    fn zero_confirm_rejected() {
        let _ = PhaseDetector::new(10, 0.5).with_confirm(0);
    }

    #[test]
    #[should_panic(expected = "window must be nonzero")]
    fn zero_window_detector_rejected() {
        let _ = PhaseDetector::new(0, 0.5);
    }
}
