//! Macros that generate [`ToJson`](crate::json::ToJson) /
//! [`FromJson`](crate::json::FromJson) impls — the in-tree replacement
//! for `#[derive(Serialize, Deserialize)]`.
//!
//! Three shapes cover almost every serialized type in the workspace:
//! named-field structs ([`json_struct!`](crate::json_struct)), newtype
//! wrappers ([`json_newtype!`](crate::json_newtype)), and fieldless
//! enums ([`json_unit_enum!`](crate::json_unit_enum)). The few enums
//! with data-carrying variants write their impls by hand against the
//! same externally-tagged convention serde used
//! (`{"Variant": {fields…}}`), so existing JSON artifacts stay
//! readable.

/// Implements `ToJson`/`FromJson` for a named-field struct.
///
/// Fields serialize in declaration order under their own names, and
/// every listed field must be present when decoding. Invoke it from
/// the module that owns the struct so private fields are reachable.
///
/// ```
/// use dwm_foundation::json::{from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: i64, y: i64 }
/// dwm_foundation::json_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: -2 };
/// assert_eq!(to_string(&p), r#"{"x":1,"y":-2}"#);
/// assert_eq!(from_str::<Point>(r#"{"x":1,"y":-2}"#).unwrap(), p);
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                let mut obj = $crate::json::Object::new();
                $(obj.insert(
                    stringify!($field),
                    $crate::json::ToJson::to_json(&self.$field),
                );)+
                $crate::json::Value::Obj(obj)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                let obj = v.as_object().ok_or_else(|| {
                    $crate::json::JsonError::expected(
                        concat!("object for ", stringify!($name)),
                        v,
                    )
                })?;
                Ok($name {
                    $($field: $crate::json::field(obj, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements `ToJson`/`FromJson` for a single-field tuple struct,
/// serialized transparently as its inner value (serde's newtype
/// convention).
///
/// ```
/// use dwm_foundation::json::{from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Id(u32);
/// dwm_foundation::json_newtype!(Id);
///
/// assert_eq!(to_string(&Id(7)), "7");
/// assert_eq!(from_str::<Id>("7").unwrap(), Id(7));
/// ```
#[macro_export]
macro_rules! json_newtype {
    ($name:ident) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::ToJson::to_json(&self.0)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(v: &$crate::json::Value) -> Result<Self, $crate::json::JsonError> {
                Ok($name(
                    $crate::json::FromJson::from_json(v)
                        .map_err(|e| e.context(stringify!($name)))?,
                ))
            }
        }
    };
}

/// Implements `ToJson`/`FromJson` for an enum whose variants carry no
/// data, serialized as the variant-name string (serde's unit-variant
/// convention).
///
/// ```
/// use dwm_foundation::json::{from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// enum Kind { Read, Write }
/// dwm_foundation::json_unit_enum!(Kind { Read, Write });
///
/// assert_eq!(to_string(&Kind::Write), "\"Write\"");
/// assert_eq!(from_str::<Kind>("\"Read\"").unwrap(), Kind::Read);
/// assert!(from_str::<Kind>("\"Wrote\"").is_err());
/// ```
#[macro_export]
macro_rules! json_unit_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Str(
                    match self {
                        $($name::$variant => stringify!($variant),)+
                    }
                    .to_owned(),
                )
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(
                v: &$crate::json::Value,
            ) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($name::$variant),)+
                    Some(other) => Err($crate::json::JsonError::decode(format!(
                        "unknown {} variant {:?}",
                        stringify!($name),
                        other
                    ))),
                    None => Err($crate::json::JsonError::expected(
                        concat!("string for enum ", stringify!($name)),
                        v,
                    )),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::json::{from_str, to_string};

    #[derive(Debug, PartialEq)]
    struct Inner {
        label: String,
        weight: u64,
    }
    json_struct!(Inner { label, weight });

    #[derive(Debug, PartialEq)]
    struct Outer {
        items: Vec<Inner>,
        scale: Option<f64>,
    }
    json_struct!(Outer { items, scale });

    #[derive(Debug, PartialEq)]
    struct Wrapper(usize);
    json_newtype!(Wrapper);

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Exact,
    }
    json_unit_enum!(Mode { Fast, Exact });

    #[test]
    fn nested_structs_round_trip() {
        let o = Outer {
            items: vec![
                Inner {
                    label: "a".into(),
                    weight: 1,
                },
                Inner {
                    label: "b".into(),
                    weight: u64::MAX,
                },
            ],
            scale: None,
        };
        let json = to_string(&o);
        assert_eq!(
            json,
            r#"{"items":[{"label":"a","weight":1},{"label":"b","weight":18446744073709551615}],"scale":null}"#
        );
        assert_eq!(from_str::<Outer>(&json).unwrap(), o);
    }

    #[test]
    fn missing_fields_are_reported_by_name() {
        let err = from_str::<Inner>(r#"{"label":"a"}"#).unwrap_err();
        assert!(err.message.contains("weight"), "{err}");
        let err =
            from_str::<Outer>(r#"{"items":[{"label":"a","weight":"x"}],"scale":1}"#).unwrap_err();
        assert!(err.message.contains("field \"weight\""), "{err}");
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_string(&Wrapper(9)), "9");
        assert_eq!(from_str::<Wrapper>("9").unwrap(), Wrapper(9));
        assert!(from_str::<Wrapper>("\"九\"").is_err());
    }

    #[test]
    fn unit_enum_uses_variant_names() {
        assert_eq!(to_string(&Mode::Exact), "\"Exact\"");
        assert_eq!(from_str::<Mode>("\"Fast\"").unwrap(), Mode::Fast);
        assert!(from_str::<Mode>("3").is_err());
    }
}
