//! The `--cluster N` front: N independent [`Engine`] shards behind a
//! consistent-hash router keyed on the workload fingerprint.
//!
//! Each shard owns a disjoint slice of the solve-cache key space:
//! a workload's `dwm_graph::fingerprint` (with the topology folded
//! in — the same key the [`crate::cache::SolveCache`] uses) always
//! lands on the same shard, so repeats of a workload hit that shard's
//! cache exactly as they would hit a single engine's. There is no
//! cross-shard invalidation and cache capacity scales near-linearly
//! with N.
//!
//! Routing table:
//!
//! * `/solve` — consistent-hashed on the first workload's fingerprint
//!   (a multi-workload batch stays together on one shard, keeping its
//!   response bodies identical to a single engine's);
//! * `/evaluate`, `/simulate` — no cache behind them, so they hash on
//!   the raw body bytes purely for deterministic spread;
//! * `/session*` — shard 0, which owns the whole session table
//!   (session ids are per-engine counters and must not collide);
//! * `/health`, malformed or unknown requests — shard 0, so error
//!   bodies and liveness are byte-identical to a single engine;
//! * `/stats` — aggregated: cluster-level routing counters plus every
//!   shard's own stats object;
//! * `/metrics` — one scrape rendering the cluster registry, every
//!   shard registry (each stamped `shard="i"`), and the global one.

use std::sync::Arc;

use dwm_device::TrackTopology;
use dwm_foundation::json::{Number, Object, Value};
use dwm_foundation::net::{Request, Response};
use dwm_foundation::obs;
use dwm_graph::{fingerprint_topology, AccessGraph};
use dwm_trace::Trace;

use crate::engine::{Engine, EngineConfig};
use crate::protocol::{parse_body, parse_topology, parse_workloads};

/// Virtual nodes per shard on the hash ring. 64 keeps the expected
/// key-space imbalance between shards under a few percent.
const VNODES: u64 = 64;

/// N placement engines behind a fingerprint-consistent router.
pub struct Cluster {
    shards: Vec<Arc<Engine>>,
    /// Sorted `(point, shard)` ring.
    ring: Vec<(u64, u32)>,
    /// Cluster-level registry (routing counters live here, separate
    /// from any single shard's registry).
    registry: Arc<obs::Registry>,
    /// `dwm_serve_cluster_routed_total{shard="i"}` handles, indexed by
    /// shard.
    routed: Vec<Arc<obs::Counter>>,
}

/// Finalizer-style 64-bit mixer (splitmix64's) used for ring points
/// and body hashes; avalanche quality matters more than speed here.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over arbitrary bytes (body-hash routing for uncached
/// endpoints).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Cluster {
    /// Builds an N-shard cluster; each shard gets `config` with its
    /// `shard` index stamped in (labelling its metric registry).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: usize, config: EngineConfig) -> Self {
        assert!(n > 0, "cluster needs at least one shard");
        let shards: Vec<Arc<Engine>> = (0..n)
            .map(|i| {
                Arc::new(Engine::with_config(EngineConfig {
                    shard: Some(i as u32),
                    ..config
                }))
            })
            .collect();
        let mut ring: Vec<(u64, u32)> = (0..n as u64)
            .flat_map(|s| (0..VNODES).map(move |v| (mix64((s << 32) | v | 1), s as u32)))
            .collect();
        ring.sort_unstable();
        let registry = Arc::new(obs::Registry::new());
        let routed = (0..n)
            .map(|i| {
                registry.counter_with(
                    "dwm_serve_cluster_routed_total",
                    &[("shard", &i.to_string())],
                    "Requests routed to each cluster shard",
                )
            })
            .collect();
        Cluster {
            shards,
            ring,
            registry,
            routed,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines (shard 0 owns sessions and error responses).
    pub fn shards(&self) -> &[Arc<Engine>] {
        &self.shards
    }

    /// The cluster-level metric registry (routing counters).
    pub fn registry(&self) -> &Arc<obs::Registry> {
        &self.registry
    }

    /// The ring owner of `key`: first point at or after it, wrapping.
    fn ring_shard(&self, key: u64) -> usize {
        let i = self.ring.partition_point(|&(p, _)| p < key);
        let (_, shard) = self.ring[if i == self.ring.len() { 0 } else { i }];
        shard as usize
    }

    /// Routing decision for one request. Anything that cannot be
    /// keyed (malformed bodies, unknown paths) pins to shard 0 so the
    /// cluster's error responses are byte-identical to a single
    /// engine's.
    fn route(&self, req: &Request) -> usize {
        match req.path.as_str() {
            "/solve" => self.solve_shard(req).unwrap_or(0),
            "/evaluate" | "/simulate" => self.ring_shard(mix64(fnv64(&req.body))),
            _ => 0,
        }
    }

    /// The cache-owner shard of a `/solve` request: the consistent
    /// hash of the first workload's topology-folded fingerprint —
    /// exactly the solve-cache key the owning engine will use, which
    /// is what makes each shard's cache slice disjoint and hit/miss
    /// sequences identical to a single engine's.
    fn solve_shard(&self, req: &Request) -> Option<usize> {
        let obj = parse_body(&req.body).ok()?;
        let topology = parse_topology(&obj).ok()?;
        let workloads = parse_workloads(&obj).ok()?;
        let ids = workloads.first()?;
        let trace = Trace::from_ids(ids.iter().copied()).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let fp = fingerprint_topology(&graph, &topology.canonical());
        Some(self.ring_shard(fp.hi ^ fp.lo))
    }

    /// Handles one request: aggregation endpoints are answered here,
    /// everything else is forwarded to its owner shard.
    pub fn handle(&self, req: &Request) -> Response {
        match req.path.as_str() {
            "/stats" if req.method == "GET" => self.stats_response(),
            "/metrics" if req.method == "GET" => self.metrics_response(),
            _ => {
                let shard = self.route(req);
                self.routed[shard].inc_always();
                self.shards[shard].handle(req)
            }
        }
    }

    /// Cluster `/stats`: routing counters plus each shard's stats
    /// object verbatim, so per-shard numbers never disagree with what
    /// that shard would report standalone.
    fn stats_response(&self) -> Response {
        let mut routed = Object::new();
        for (i, counter) in self.routed.iter().enumerate() {
            routed.insert(i.to_string(), Value::Num(Number::U(counter.value())));
        }
        let mut cluster = Object::new();
        cluster.insert("shards", Value::Num(Number::U(self.shards.len() as u64)));
        cluster.insert("routed", Value::Obj(routed));
        let shard_stats: Vec<Value> = self
            .shards
            .iter()
            .map(|engine| {
                let resp = engine.handle(&Request::new("GET", "/stats"));
                resp.body_str()
                    .and_then(|text| dwm_foundation::json::parse(text).ok())
                    .unwrap_or(Value::Null)
            })
            .collect();
        let mut obj = Object::new();
        obj.insert("cluster", Value::Obj(cluster));
        obj.insert("shards", Value::Arr(shard_stats));
        Response::json(200, Value::Obj(obj).to_compact())
    }

    /// Cluster `/metrics`: one exposition joining the cluster
    /// registry, every shard registry (disjoint names thanks to the
    /// `shard="i"` default label), and the global transport/solver
    /// registry.
    fn metrics_response(&self) -> Response {
        let mut registries: Vec<&obs::Registry> = vec![&self.registry];
        for engine in &self.shards {
            registries.push(engine.registry());
        }
        registries.push(obs::global());
        let text = obs::render_prometheus(&registries);
        Response {
            status: 200,
            headers: vec![("content-type".into(), "text/plain; version=0.0.4".into())],
            body: text.into_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_body(ids: &str) -> String {
        format!(r#"{{"ids":{ids}}}"#)
    }

    #[test]
    fn routing_is_stable_and_owner_consistent() {
        let cluster = Cluster::new(4, EngineConfig::default());
        let req = Request::post("/solve", solve_body("[0,1,0,2,1]"));
        let owner = cluster.route(&req);
        for _ in 0..5 {
            assert_eq!(cluster.route(&req), owner);
        }
        // Different workloads spread across shards (not all on one).
        let owners: std::collections::HashSet<usize> = (0..32)
            .map(|k| {
                let ids: Vec<u32> = (0..16).map(|i| (i * (k + 2)) % 11).collect();
                let body = format!(r#"{{"ids":{ids:?}}}"#);
                cluster.route(&Request::post("/solve", body))
            })
            .collect();
        assert!(owners.len() > 1, "32 workloads all routed to one shard");
    }

    #[test]
    fn repeats_hit_the_owner_shard_cache_like_a_single_engine() {
        let cluster = Cluster::new(4, EngineConfig::default());
        let single = Engine::with_config(EngineConfig::default());
        let req = Request::post("/solve", solve_body("[0,1,0,2,1,3]"));
        for _ in 0..3 {
            let clustered = cluster.handle(&req);
            let alone = single.handle(&req);
            assert_eq!(clustered.body, alone.body, "cluster response diverged");
        }
        // Exactly one shard holds the record; total entries match the
        // single engine.
        let entries: usize = cluster
            .shards()
            .iter()
            .map(|e| e.cache().stats().entries as usize)
            .sum();
        assert_eq!(entries, single.cache().stats().entries as usize);
        assert_eq!(entries, 1);
    }

    #[test]
    fn sessions_and_errors_pin_to_shard_zero() {
        let cluster = Cluster::new(3, EngineConfig::default());
        let create = cluster.handle(&Request::post("/session", r#"{"window":4}"#));
        assert_eq!(create.status, 200);
        let bad = cluster.handle(&Request::post("/solve", "not json"));
        assert_eq!(bad.status, 400);
        let single = Engine::with_config(EngineConfig::default());
        let bad_single = single.handle(&Request::post("/solve", "not json"));
        assert_eq!(bad.body, bad_single.body);
    }

    #[test]
    fn cluster_stats_aggregates_routing_and_shard_objects() {
        let cluster = Cluster::new(2, EngineConfig::default());
        cluster.handle(&Request::post("/solve", solve_body("[0,1,2,0]")));
        let stats = cluster.handle(&Request::new("GET", "/stats"));
        let text = stats.body_str().unwrap();
        let value = dwm_foundation::json::parse(text).unwrap();
        let Value::Obj(obj) = &value else {
            panic!("stats is not an object")
        };
        let Some(Value::Obj(c)) = obj.get("cluster") else {
            panic!("no cluster object")
        };
        assert_eq!(c.get("shards"), Some(&Value::Num(Number::U(2))));
        let Some(Value::Arr(shards)) = obj.get("shards") else {
            panic!("no shards array")
        };
        assert_eq!(shards.len(), 2);
        // The routed counters sum to the one request sent.
        let Some(Value::Obj(routed)) = c.get("routed") else {
            panic!("no routed object")
        };
        let total: u64 = (0..2)
            .map(|i| match routed.get(&i.to_string()) {
                Some(Value::Num(Number::U(n))) => *n,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 1);
        // /metrics carries the same family, labelled per shard.
        let metrics = cluster.handle(&Request::new("GET", "/metrics"));
        let exposition = metrics.body_str().unwrap();
        assert!(exposition.contains("dwm_serve_cluster_routed_total{shard=\"0\"}"));
        assert!(exposition.contains("dwm_serve_cluster_routed_total{shard=\"1\"}"));
    }
}
