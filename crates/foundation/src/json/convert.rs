//! [`ToJson`] / [`FromJson`] traits and implementations for the
//! standard types the workspace serializes.
//!
//! These replace `serde::Serialize` / `serde::Deserialize`: a type
//! converts to and from the in-tree [`Value`] tree, and the
//! [`json_struct!`](crate::json_struct), [`json_newtype!`](crate::json_newtype), and
//! [`json_unit_enum!`](crate::json_unit_enum) macros generate the impls that
//! `#[derive(Serialize, Deserialize)]` used to.

use std::collections::{BTreeMap, HashMap};

use super::parse::JsonError;
use super::value::{Number, Object, Value};

/// Conversion into a JSON [`Value`].
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

/// Conversion from a JSON [`Value`].
pub trait FromJson: Sized {
    /// Reconstructs `Self` from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the value has the wrong shape.
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

/// Serializes `value` compactly (the `serde_json::to_string`
/// replacement).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Serializes `value` with indentation and a trailing newline (the
/// `serde_json::to_string_pretty` replacement).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses and decodes in one step (the `serde_json::from_str`
/// replacement).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON (with line/column) or on
/// a shape mismatch.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&super::parse(input)?)
}

/// Decodes the field `name` of `obj`, tagging errors with the field
/// name. Used by the impl macros.
pub fn field<T: FromJson>(obj: &Object, name: &str) -> Result<T, JsonError> {
    let v = obj
        .get(name)
        .ok_or_else(|| JsonError::decode(format!("missing field {name:?}")))?;
    T::from_json(v).map_err(|e| e.context(&format!("field {name:?}")))
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool", v))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v
                    .as_number()
                    .and_then(Number::as_u64)
                    .ok_or_else(|| JsonError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::decode(format!(
                        "{} out of range for {}", n, stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),+ $(,)?) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Num(Number::I(v))
                } else {
                    Value::Num(Number::U(v as u64))
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let n = v
                    .as_number()
                    .and_then(Number::as_i64)
                    .ok_or_else(|| JsonError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::decode(format!(
                        "{} out of range for {}", n, stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            // Non-finite floats serialize as null; accept the round trip.
            Value::Null => Ok(f64::NAN),
            _ => Err(JsonError::expected("number", v)),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Num(Number::F(*self as f64))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items = v
            .as_array()
            .ok_or_else(|| JsonError::expected("array", v))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.context(&format!("element {i}"))))
            .collect()
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal),+ $(,)?) => {$(
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let items = v.as_array().ok_or_else(|| JsonError::expected("array", v))?;
                if items.len() != $len {
                    return Err(JsonError::decode(format!(
                        "expected a {}-tuple, got {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::from_json(&items[$idx])
                    .map_err(|e| e.context(&format!("tuple element {}", $idx)))?,)+))
            }
        }
    )+};
}

impl_json_tuple!(
    (A: 0, B: 1) with 2,
    (A: 0, B: 1, C: 2) with 3,
    (A: 0, B: 1, C: 2, D: 3) with 4,
);

/// Types usable as JSON object keys (serialized as strings, like
/// serde_json does for integer-keyed maps).
pub trait JsonKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the key does not parse.
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),+ $(,)?) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(key: &str) -> Result<Self, JsonError> {
                key.parse().map_err(|_| {
                    JsonError::decode(format!(
                        "bad {} object key {key:?}", stringify!($t)
                    ))
                })
            }
        }
    )+};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        let mut obj = Object::new();
        for (k, v) in self {
            obj.insert(k.to_key(), v.to_json());
        }
        Value::Obj(obj)
    }
}

impl<K: JsonKey + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| {
                Ok((
                    K::from_key(k)?,
                    V::from_json(val).map_err(|e| e.context(&format!("key {k:?}")))?,
                ))
            })
            .collect()
    }
}

impl<K: JsonKey + Ord + std::hash::Hash, V: ToJson> ToJson for HashMap<K, V> {
    fn to_json(&self) -> Value {
        // Sorted key order: HashMap iteration order is nondeterministic
        // and byte-identical output is a workspace-wide guarantee.
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        let mut obj = Object::new();
        for k in keys {
            obj.insert(k.to_key(), self[k].to_json());
        }
        Value::Obj(obj)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: FromJson> FromJson for HashMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .ok_or_else(|| JsonError::expected("object", v))?;
        obj.iter()
            .map(|(k, val)| {
                Ok((
                    K::from_key(k)?,
                    V::from_json(val).map_err(|e| e.context(&format!("key {k:?}")))?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>(&to_string(&-5i32)).unwrap(), -5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"x\"").unwrap(), "x");
        assert_eq!(to_string("x"), "\"x\"");
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert!(from_str::<i8>("200").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, -2i64), (3, 4)];
        assert_eq!(from_str::<Vec<(u32, i64)>>(&to_string(&v)).unwrap(), v);
        let opt: Vec<Option<u8>> = vec![None, Some(7)];
        assert_eq!(to_string(&opt), "[null,7]");
        assert_eq!(from_str::<Vec<Option<u8>>>("[null,7]").unwrap(), opt);
    }

    #[test]
    fn integer_keyed_maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert(3usize, 30u64);
        m.insert(1usize, 10u64);
        assert_eq!(to_string(&m), r#"{"1":10,"3":30}"#);
        assert_eq!(
            from_str::<BTreeMap<usize, u64>>(r#"{"1":10,"3":30}"#).unwrap(),
            m
        );
    }

    #[test]
    fn hashmap_output_is_sorted() {
        let mut m = HashMap::new();
        for k in [9u32, 1, 5, 3] {
            m.insert(k, k);
        }
        assert_eq!(to_string(&m), r#"{"1":1,"3":3,"5":5,"9":9}"#);
        assert_eq!(from_str::<HashMap<u32, u32>>(&to_string(&m)).unwrap(), m);
    }

    #[test]
    fn decode_errors_name_the_field() {
        let err = from_str::<Vec<u32>>("[1,\"x\"]").unwrap_err();
        assert!(err.message.contains("element 1"), "{err}");
    }

    #[test]
    fn non_finite_floats_round_trip_as_nan() {
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
