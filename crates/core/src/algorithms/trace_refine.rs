use dwm_trace::Trace;

use crate::cost::CostModel;
use crate::placement::Placement;

/// Trace-aware refinement against an arbitrary cost model.
///
/// The graph-based [`LocalSearch`](crate::LocalSearch) optimizes the
/// arrangement cost, which equals the *single-port* shift count — but
/// multi-port and typed-port tapes have different geometry, and a
/// placement tuned for `|Δoffset|` can even lose to naive there
/// (experiment F5 shows this at 8 ports). `TraceRefiner` closes that
/// gap: it hill-climbs swap moves evaluated by *replaying the trace
/// under the actual cost model*. Each probe costs a full replay, so a
/// pass is `O(n · window · T)` — fine for DBC-sized item counts, and
/// the candidate placement it starts from is already good.
///
/// Never increases the model's cost (first-improvement hill climbing).
///
/// # Example
///
/// ```
/// use dwm_trace::Trace;
/// use dwm_graph::AccessGraph;
/// use dwm_core::{Hybrid, PlacementAlgorithm};
/// use dwm_core::cost::{CostModel, MultiPortCost};
/// use dwm_core::algorithms::TraceRefiner;
///
/// let trace = Trace::from_ids([0u32, 7, 1, 6, 2, 5, 3, 4, 0, 7]);
/// let graph = AccessGraph::from_trace(&trace);
/// let mut placement = Hybrid::default().place(&graph);
/// let model = MultiPortCost::evenly_spaced(2, 8);
/// let before = model.trace_cost(&placement, &trace).stats.shifts;
/// TraceRefiner::default().refine(&model, &trace, &mut placement);
/// let after = model.trace_cost(&placement, &trace).stats.shifts;
/// assert!(after <= before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRefiner {
    /// Maximum full passes over all positions.
    pub max_passes: usize,
    /// Maximum distance between swapped positions per probe.
    pub window: usize,
}

impl Default for TraceRefiner {
    fn default() -> Self {
        TraceRefiner {
            max_passes: 6,
            window: 6,
        }
    }
}

impl TraceRefiner {
    /// A refiner with the given pass budget and window.
    pub fn new(max_passes: usize, window: usize) -> Self {
        TraceRefiner {
            max_passes,
            window: window.max(1),
        }
    }

    /// Refines `placement` in place against `model` on `trace`;
    /// returns the cost reduction achieved (in the model's shifts).
    ///
    /// Probes replay a *collapsed* copy of the trace: an access
    /// repeating the previous `(item, kind)` pair costs zero shifts
    /// under every shift-cost model (the port aligned by the previous
    /// access is still aligned) and leaves the tape state unchanged,
    /// so dropping such runs changes no placement's shift total. On
    /// reuse-heavy traces this shrinks each probe replay several-fold.
    pub fn refine(&self, model: &dyn CostModel, trace: &Trace, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 || trace.is_empty() {
            return 0;
        }
        let trace = &collapse_repeats(trace);
        let mut current = model.trace_cost(placement, trace).stats.shifts;
        let start = current;
        for _ in 0..self.max_passes {
            let mut improved = false;
            for k in 0..n - 1 {
                for j in (k + 1)..(k + 1 + self.window).min(n) {
                    let (a, b) = (placement.item_at(k), placement.item_at(j));
                    placement.swap_items(a, b);
                    let cost = model.trace_cost(placement, trace).stats.shifts;
                    if cost < current {
                        current = cost;
                        improved = true;
                    } else {
                        placement.swap_items(a, b); // revert
                    }
                }
            }
            if !improved {
                break;
            }
        }
        start - current
    }
}

/// Drops every access whose `(item, kind)` equals the previous
/// access's. Shift-invariant for any cost model whose state is the
/// tape alignment (see [`TraceRefiner::refine`]).
fn collapse_repeats(trace: &Trace) -> Trace {
    let mut prev: Option<(dwm_trace::ItemId, bool)> = None;
    Trace::from_accesses(
        trace
            .iter()
            .filter(|a| {
                let key = (a.item, a.kind.is_write());
                if prev == Some(key) {
                    false
                } else {
                    prev = Some(key);
                    true
                }
            })
            .copied(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Hybrid, PlacementAlgorithm, RandomPlacement};
    use crate::cost::{MultiPortCost, SinglePortCost, TypedPortCost};
    use dwm_device::TypedPortLayout;
    use dwm_graph::AccessGraph;
    use dwm_trace::synth::{TraceGenerator, ZipfGen};

    #[test]
    fn never_increases_cost_under_any_model() {
        let trace = ZipfGen::new(24, 9).generate(800).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(SinglePortCost::new()),
            Box::new(MultiPortCost::evenly_spaced(4, 24)),
            Box::new(TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, 24))),
        ];
        for model in &models {
            let mut p = RandomPlacement::new(4).place(&graph);
            let before = model.trace_cost(&p, &trace).stats.shifts;
            let saved = TraceRefiner::default().refine(model.as_ref(), &trace, &mut p);
            let after = model.trace_cost(&p, &trace).stats.shifts;
            assert!(after <= before, "{} got worse", model.name());
            assert_eq!(before - after, saved, "{} saving mismatch", model.name());
        }
    }

    #[test]
    fn repairs_multi_port_mismatch() {
        // A single-port-optimized placement refined for an 8-port tape
        // must match or beat its unrefined self under that tape.
        let trace = ZipfGen::new(32, 5).generate(2000).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let model = MultiPortCost::evenly_spaced(8, 32);
        let base = Hybrid::default().place(&graph);
        let base_cost = model.trace_cost(&base, &trace).stats.shifts;
        let mut refined = base.clone();
        TraceRefiner::default().refine(&model, &trace, &mut refined);
        let refined_cost = model.trace_cost(&refined, &trace).stats.shifts;
        assert!(refined_cost <= base_cost);
    }

    #[test]
    fn result_is_a_permutation() {
        let trace = ZipfGen::new(16, 2).generate(300).normalize();
        let graph = AccessGraph::from_trace(&trace);
        let mut p = Hybrid::default().place(&graph);
        TraceRefiner::new(2, 4).refine(&SinglePortCost::new(), &trace, &mut p);
        let mut seen = [false; 16];
        for off in 0..16 {
            assert!(!seen[p.item_at(off)]);
            seen[p.item_at(off)] = true;
        }
    }

    #[test]
    fn collapsed_trace_preserves_shift_totals() {
        use dwm_trace::{Access, Trace};
        // Reuse-heavy trace with read/write runs: collapse must drop
        // only exact (item, kind) repeats and keep shift totals equal
        // under every model, for several placements.
        let mut t = Trace::new();
        for &(id, write, reps) in &[
            (0u32, false, 3usize),
            (5, true, 2),
            (5, false, 1),
            (5, false, 4),
            (2, true, 1),
            (0, false, 2),
            (7, true, 3),
        ] {
            for _ in 0..reps {
                t.push(if write {
                    Access::write(id)
                } else {
                    Access::read(id)
                });
            }
        }
        let t = t.normalize();
        let collapsed = super::collapse_repeats(&t);
        assert!(collapsed.len() < t.len());
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(SinglePortCost::new()),
            Box::new(MultiPortCost::evenly_spaced(3, t.num_items())),
            Box::new(TypedPortCost::new(TypedPortLayout::evenly_spaced(
                3,
                1,
                t.num_items(),
            ))),
        ];
        for model in &models {
            for seed in 0..4 {
                let g = AccessGraph::from_trace(&t);
                let p = RandomPlacement::new(seed).place(&g);
                assert_eq!(
                    model.trace_cost(&p, &t).stats.shifts,
                    model.trace_cost(&p, &collapsed).stats.shifts,
                    "{} seed {seed}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn trivial_inputs_are_no_ops() {
        let mut p = Placement::identity(1);
        let saved = TraceRefiner::default().refine(
            &SinglePortCost::new(),
            &dwm_trace::Trace::from_ids([0u32]),
            &mut p,
        );
        assert_eq!(saved, 0);
        let mut p = Placement::identity(4);
        let saved = TraceRefiner::default().refine(
            &SinglePortCost::new(),
            &dwm_trace::Trace::new(),
            &mut p,
        );
        assert_eq!(saved, 0);
    }
}
