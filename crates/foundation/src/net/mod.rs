//! Minimal HTTP/1.1-style framing and an epoll event-loop TCP server.
//!
//! The serving subsystem (`dwm-serve`) needs a long-running daemon
//! that holds thousands of keep-alive connections, but the workspace
//! is hermetic — no tokio, no hyper, no libc. This module covers
//! exactly what a placement service requires with `std` plus a few
//! raw syscalls:
//!
//! * [`Request`]/[`Response`] — a request parser and response writer
//!   for the HTTP/1.1 subset the service speaks (request line, headers,
//!   `Content-Length` bodies, keep-alive connections), in both a
//!   blocking flavor (clients) and an incremental flavor
//!   ([`try_parse_request`]) the event loop feeds byte-wise;
//! * [`Poller`] — a small readiness abstraction (epoll on Linux,
//!   kqueue stub-gated elsewhere) with level- and edge-triggered
//!   registration, plus an eventfd [`Waker`] for cross-thread wakeups;
//! * [`BoundedQueue`] — a capacity-limited MPMC handoff queue whose
//!   `try_push` refuses work when full, giving the server backpressure
//!   instead of unbounded memory growth;
//! * [`Server`] — per-shard event loops (one `SO_REUSEPORT` listener
//!   each) driving nonblocking connections as explicit state machines
//!   (reading → handling → writing → keep-alive), with parsed requests
//!   handed to a bounded worker pool so handler CPU time never blocks
//!   a loop. Overload answers `503` per request; slow-header peers are
//!   cut off with `408` after [`ServerConfig::read_deadline`];
//!   shutdown is graceful: accepting stops, idle connections shed,
//!   in-flight requests drain to completion, and every thread joins.
//!
//! Connection count is bounded by fds, not threads: 10 000 idle
//! keep-alive connections cost 10 000 fds and their buffers, while
//! thread count stays `workers + shards`.
//!
//! Determinism note: a connection belongs to exactly one event loop,
//! and only one request per connection is ever in flight, so a single
//! client always observes its responses in request order;
//! cross-connection scheduling is left to the OS, which is fine
//! because the service's response bodies are a pure function of the
//! request. See `docs/SERVING.md` for the full determinism contract.

mod parser;
mod poller;
mod server;
mod sys;

pub use parser::{
    read_request, read_response, try_parse_request, NetError, Parsed, Request, Response,
};
pub use poller::{Interest, PollEvent, Poller, Waker};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use sys::raise_nofile_limit;

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A capacity-bounded MPMC queue with closing semantics.
///
/// `try_push` never blocks: a full (or closed) queue hands the item
/// straight back, which is how the event loop converts overload into
/// an immediate `503` instead of queueing unboundedly. `pop` blocks
/// until an item arrives or the queue is closed *and* drained, so
/// workers naturally finish all accepted work before exiting.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    ///
    /// # Errors
    ///
    /// The rejected item itself, so the caller can dispose of it (e.g.
    /// answer `503` on the connection).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is open and
    /// empty. `None` means closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending items remain poppable, new pushes are
    /// rejected, and blocked `pop`s wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{self, BufReader, Cursor, Write};
    use std::net::TcpStream;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use std::time::Duration;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, NetError> {
        read_request(&mut BufReader::new(Cursor::new(bytes.to_vec())))
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /solve HTTP/1.1\r\ncontent-length: 4\r\nx-k: v\r\n\r\nabcd";
        let req = parse(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.header("X-K"), Some("v"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none_and_torn_requests_are_errors() {
        assert!(parse(b"").unwrap().is_none());
        assert!(parse(b"GET /x HTTP/1.1\r\n").is_err()); // EOF in headers
        assert!(parse(b"garbage\r\n\r\n").is_err());
        assert!(parse(b"POST / HTTP/1.1\r\ncontent-length: pony\r\n\r\n").is_err());
    }

    #[test]
    fn request_and_response_round_trip_wire_form() {
        let mut wire = Vec::new();
        Request::post("/solve", "{}").write_to(&mut wire).unwrap();
        let back = parse(&wire).unwrap().unwrap();
        assert_eq!(back.path, "/solve");
        assert_eq!(back.body, b"{}");

        let mut wire = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .with_header("x-dwm-elapsed-us", "12")
            .write_to(&mut wire, false)
            .unwrap();
        let resp = read_response(&mut BufReader::new(Cursor::new(wire)))
            .unwrap()
            .unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.header("X-DWM-Elapsed-Us"), Some("12"));
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.body_str(), Some("{\"ok\":true}"));
    }

    #[test]
    fn bounded_queue_backpressure_and_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        // Pending items stay poppable after close, then None.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn closed_queue_wakes_blocked_pops() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn server_round_trip_and_graceful_shutdown() {
        let handle = Server::start(ServerConfig::default(), |req| {
            Response::text(200, format!("echo:{}", req.path))
        })
        .unwrap();
        let addr = handle.local_addr();
        let mut responses = Vec::new();
        for i in 0..3 {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            Request::new("GET", &format!("/r{i}"))
                .write_to(&mut writer)
                .unwrap();
            let resp = read_response(&mut reader).unwrap().unwrap();
            responses.push(resp.body_str().unwrap().to_owned());
        }
        assert_eq!(responses, vec!["echo:/r0", "echo:/r1", "echo:/r2"]);
        assert_eq!(handle.stats().requests.load(Ordering::Relaxed), 3);
        handle.shutdown();
        assert!(handle.is_shutting_down());
        handle.join();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_per_connection() {
        let handle = Server::start(ServerConfig::default(), |req| {
            Response::json(200, format!("{{\"len\":{}}}", req.body.len()))
        })
        .unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for body in ["x", "yy", "zzz"] {
            Request::post("/b", body).write_to(&mut writer).unwrap();
            let resp = loop {
                match read_response(&mut reader) {
                    Ok(Some(r)) => break r,
                    Ok(None) => panic!("server closed keep-alive connection"),
                    Err(NetError::Io(e))
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue
                    }
                    Err(e) => panic!("read: {e}"),
                }
            };
            assert_eq!(
                resp.body_str().unwrap(),
                format!("{{\"len\":{}}}", body.len())
            );
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn pipelined_requests_answered_in_order() {
        let handle = Server::start(ServerConfig::default(), |req| {
            Response::text(200, format!("echo:{}", req.path))
        })
        .unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        // Three requests in one burst, no reads in between.
        let mut burst = Vec::new();
        for i in 0..3 {
            Request::new("GET", &format!("/p{i}"))
                .write_to(&mut burst)
                .unwrap();
        }
        writer.write_all(&burst).unwrap();
        let mut reader = BufReader::new(stream);
        for i in 0..3 {
            let resp = read_response(&mut reader).unwrap().unwrap();
            assert_eq!(resp.body_str().unwrap(), format!("echo:/p{i}"));
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn slow_header_client_gets_408() {
        let config = ServerConfig {
            read_deadline: Duration::from_millis(100),
            ..ServerConfig::default()
        };
        let handle = Server::start(config, |_| Response::text(200, "ok")).unwrap();
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        // A partial request line, then silence past the deadline.
        stream.write_all(b"GET /slow").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let resp = read_response(&mut reader).unwrap().unwrap();
        assert_eq!(resp.status, 408);
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(handle.stats().timed_out.load(Ordering::Relaxed), 1);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn idle_keep_alive_connection_survives_the_read_deadline() {
        let config = ServerConfig {
            read_deadline: Duration::from_millis(50),
            ..ServerConfig::default()
        };
        let handle = Server::start(config, |_| Response::text(200, "ok")).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        Request::new("GET", "/a").write_to(&mut writer).unwrap();
        assert_eq!(read_response(&mut reader).unwrap().unwrap().status, 200);
        // Idle (no buffered bytes) well past the deadline: the
        // connection must stay usable — that exemption is what makes
        // 10k parked keep-alive clients possible.
        std::thread::sleep(Duration::from_millis(150));
        Request::new("GET", "/b").write_to(&mut writer).unwrap();
        assert_eq!(read_response(&mut reader).unwrap().unwrap().status, 200);
        assert_eq!(handle.stats().timed_out.load(Ordering::Relaxed), 0);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn mid_response_disconnect_does_not_wedge_the_server() {
        let handle = Server::start(ServerConfig::default(), |_| {
            Response::text(200, vec![b'x'; 4 * 1024 * 1024])
        })
        .unwrap();
        // Fire a request and vanish without reading the 4 MiB reply.
        {
            let stream = TcpStream::connect(handle.local_addr()).unwrap();
            let mut writer = stream.try_clone().unwrap();
            Request::new("GET", "/big").write_to(&mut writer).unwrap();
        }
        // The server must still answer fresh connections.
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        Request::new("GET", "/after").write_to(&mut writer).unwrap();
        assert!(read_response(&mut reader).unwrap().unwrap().is_success());
        handle.shutdown();
        handle.join();
    }
}
