//! Shift-aware wear leveling for DWM tapes.
//!
//! A good placement concentrates hot items — and therefore *writes* —
//! on a few tape offsets, whose cells age fastest. The classic remedy
//! is start-gap rotation: keep one spare slot and periodically rotate
//! the logical→physical mapping by one position, so every physical
//! slot hosts every logical offset over time. Rotation costs shifts
//! (the rotated word must be read out and rewritten at the gap), so
//! wear leveling trades endurance against exactly the metric placement
//! optimizes — the F11 experiment quantifies that trade.
//!
//! [`RotatingEvaluator`] replays a trace under a placement with
//! start-gap rotation and reports both the shift bill (accesses +
//! rotations) and the per-physical-slot write histogram from which the
//! wear-imbalance figure derives.

use dwm_trace::Trace;

use crate::placement::Placement;

/// Start-gap rotation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WearConfig {
    /// Rotate the mapping by one slot every this many writes
    /// (`0` disables rotation — the static baseline).
    pub rotate_every_writes: u64,
    /// Shift cost of one rotation step (align the word next to the
    /// gap, read it, realign the gap, write it). For an `n`-word tape
    /// the worst case is about `2 n`.
    pub rotation_cost_shifts: u64,
}

impl WearConfig {
    /// The static (no rotation) configuration.
    pub fn disabled() -> Self {
        WearConfig {
            rotate_every_writes: 0,
            rotation_cost_shifts: 0,
        }
    }

    /// Rotation every `writes` writes with the worst-case cost for an
    /// `n`-word tape.
    pub fn every_writes(writes: u64, n: usize) -> Self {
        WearConfig {
            rotate_every_writes: writes,
            rotation_cost_shifts: 2 * n as u64,
        }
    }
}

/// Result of a wear-aware replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WearReport {
    /// Shifts spent serving accesses.
    pub access_shifts: u64,
    /// Shifts spent on rotation steps.
    pub rotation_shifts: u64,
    /// Number of rotation steps performed.
    pub rotations: u64,
    /// Writes landed on each *physical* slot (`n + 1` slots: the data
    /// region plus the gap).
    pub slot_writes: Vec<u64>,
}

impl WearReport {
    /// Total shift bill.
    pub fn total_shifts(&self) -> u64 {
        self.access_shifts + self.rotation_shifts
    }

    /// Wear imbalance: hottest slot's writes over the mean across
    /// slots that received any write pressure window (the whole
    /// device once rotation is on). 1.0 = perfectly level; large
    /// values = endurance hot spots. Returns 0 for a write-free run.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.slot_writes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.slot_writes.len() as f64;
        let max = *self.slot_writes.iter().max().expect("nonempty") as f64;
        max / mean
    }
}

/// Replays traces under start-gap rotation.
///
/// Physical geometry: `n + 1` slots for `n` logical offsets; the gap
/// starts at slot `n`. Each rotation step moves the word adjacent to
/// the gap into the gap, sliding the gap one slot down (wrapping), so
/// after `n + 1 × rotate_every` writes every logical offset has
/// visited every physical slot.
///
/// # Example
///
/// ```
/// use dwm_trace::Trace;
/// use dwm_core::{Placement, wear::{RotatingEvaluator, WearConfig}};
///
/// // All writes hammer one item.
/// let trace = Trace::from_accesses(
///     (0..1000).map(|_| dwm_trace::Access::write(0u32)),
/// );
/// let placement = Placement::identity(8);
/// let fixed = RotatingEvaluator::new(WearConfig::disabled())
///     .evaluate(&placement, &trace);
/// let level = RotatingEvaluator::new(WearConfig::every_writes(10, 8))
///     .evaluate(&placement, &trace);
/// assert!(level.imbalance() < fixed.imbalance());
/// assert!(level.rotation_shifts > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotatingEvaluator {
    config: WearConfig,
}

impl RotatingEvaluator {
    /// An evaluator with the given rotation policy.
    pub fn new(config: WearConfig) -> Self {
        RotatingEvaluator { config }
    }

    /// Replays `trace` under `placement` with start-gap rotation,
    /// counting shifts (single-port model on the `n + 1`-slot physical
    /// tape) and per-slot write pressure.
    ///
    /// # Panics
    ///
    /// Panics if the trace references items outside the placement.
    pub fn evaluate(&self, placement: &Placement, trace: &Trace) -> WearReport {
        let n = placement.num_items();
        let slots = n + 1;
        let mut report = WearReport {
            access_shifts: 0,
            rotation_shifts: 0,
            rotations: 0,
            slot_writes: vec![0; slots],
        };
        if n == 0 {
            return report;
        }
        // rotation = how many slots the whole mapping has slid.
        let mut rotation = 0usize;
        let mut position = 0usize; // physical slot under the port
        let mut writes_since_rotation = 0u64;
        for a in trace.iter() {
            let physical = (placement.offset_of_id(a.item) + rotation) % slots;
            report.access_shifts += (physical as i64).abs_diff(position as i64);
            position = physical;
            if a.kind.is_write() {
                report.slot_writes[physical] += 1;
                writes_since_rotation += 1;
                if self.config.rotate_every_writes > 0
                    && writes_since_rotation >= self.config.rotate_every_writes
                {
                    writes_since_rotation = 0;
                    rotation = (rotation + 1) % slots;
                    report.rotation_shifts += self.config.rotation_cost_shifts;
                    report.rotations += 1;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_trace::synth::{TraceGenerator, ZipfGen};
    use dwm_trace::Access;

    fn write_hammer(item: u32, count: usize) -> Trace {
        Trace::from_accesses((0..count).map(|_| Access::write(item)))
    }

    #[test]
    fn static_run_concentrates_wear() {
        let trace = write_hammer(3, 500);
        let report = RotatingEvaluator::new(WearConfig::disabled())
            .evaluate(&Placement::identity(8), &trace);
        assert_eq!(report.slot_writes[3], 500);
        assert_eq!(report.rotations, 0);
        // Imbalance = 500 / (500/9 slots) = 9.
        assert!((report.imbalance() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_levels_wear() {
        let trace = write_hammer(3, 900);
        let report = RotatingEvaluator::new(WearConfig::every_writes(10, 8))
            .evaluate(&Placement::identity(8), &trace);
        // 90 rotations over 9 slots: every slot hosts item 3 ten times.
        assert!(report.imbalance() < 1.5, "imbalance {}", report.imbalance());
        assert_eq!(report.rotations, 90);
        assert_eq!(report.rotation_shifts, 90 * 16);
    }

    #[test]
    fn rotation_preserves_access_accounting() {
        let trace = ZipfGen::new(16, 3).generate(2000).normalize();
        let placement = Placement::identity(16);
        let fixed = RotatingEvaluator::new(WearConfig::disabled()).evaluate(&placement, &trace);
        let rot =
            RotatingEvaluator::new(WearConfig::every_writes(50, 16)).evaluate(&placement, &trace);
        // Reads don't rotate; with no writes in the trace the two runs
        // agree exactly.
        assert_eq!(fixed.rotations, 0);
        assert_eq!(rot.rotations, 0, "read-only trace must not rotate");
        assert_eq!(fixed.access_shifts, rot.access_shifts);
    }

    #[test]
    fn total_includes_rotation_overhead() {
        let trace = write_hammer(0, 100);
        let report = RotatingEvaluator::new(WearConfig::every_writes(10, 8))
            .evaluate(&Placement::identity(8), &trace);
        assert_eq!(
            report.total_shifts(),
            report.access_shifts + report.rotation_shifts
        );
        assert!(report.rotation_shifts > 0);
    }

    #[test]
    fn empty_cases() {
        let report = RotatingEvaluator::new(WearConfig::every_writes(10, 0))
            .evaluate(&Placement::identity(0), &Trace::new());
        assert_eq!(report.total_shifts(), 0);
        assert_eq!(report.imbalance(), 0.0);
    }
}
