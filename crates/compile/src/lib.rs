//! Affine loop-nest IR for DWM data-placement studies.
//!
//! The original toolflow extracts access traces from compiled
//! benchmarks; this crate reproduces that front end as a small,
//! self-contained compiler substrate:
//!
//! * [`ir`] — declare arrays and build affine loop nests
//!   (`for i in 0..n { A[2*i+1]; B[i] = …; }`) with a fluent builder;
//! * [`exec`] — execute the program, emitting the exact block-granular
//!   access [`Trace`](dwm_trace::Trace) the placement crates consume;
//! * [`layout`] — the data-layout pass: run the program symbolically,
//!   place its blocks with any
//!   [`PlacementAlgorithm`](dwm_core::PlacementAlgorithm), and map the
//!   result back to per-array element locations.
//!
//! # Example
//!
//! ```
//! use dwm_compile::ir::{Program, AffineExpr};
//! use dwm_compile::layout::assign_layout;
//! use dwm_core::Hybrid;
//!
//! // for i in 0..8 { y[i] = y[i] + a[i] * x[2*i % 16]; }
//! let mut p = Program::new();
//! let a = p.array("a", 8, 1);
//! let x = p.array("x", 16, 2);
//! let y = p.array("y", 8, 1);
//! let i = p.loop_var("i");
//! p.for_loop(i, 0, 8, |body| {
//!     body.read(y, AffineExpr::var(i));
//!     body.read(a, AffineExpr::var(i));
//!     body.read(x, AffineExpr::var(i).scale(2).modulo(16));
//!     body.write(y, AffineExpr::var(i));
//! });
//!
//! let layout = assign_layout(&p, &Hybrid::default())?;
//! assert!(layout.tuned_shifts <= layout.naive_shifts);
//! # Ok::<(), dwm_compile::exec::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod ir;
pub mod layout;

pub use exec::{execute, ExecError};
pub use ir::{AffineExpr, ArrayId, LoopVar, Program};
pub use layout::{assign_layout, DataLayout};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::exec::{execute, ExecError};
    pub use crate::ir::{AffineExpr, ArrayId, LoopVar, Program};
    pub use crate::layout::{assign_layout, DataLayout};
}
