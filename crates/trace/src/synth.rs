//! Seeded synthetic trace generators.
//!
//! The sensitivity sweeps (experiments F4/F5/F7) and the property tests
//! need workloads whose statistical character is controlled: uniform
//! random (worst case for placement), Zipf-skewed (frequency-dominated),
//! sequential/strided (regular), and Markov-clustered (locality-
//! dominated, the case placement exploits best). All generators are
//! deterministic given their seed.

use dwm_foundation::rng::Zipf;
use dwm_foundation::Rng;

use crate::access::{Access, AccessKind, Trace};

/// A source of synthetic traces.
///
/// Implementors are cheap value types describing a distribution; call
/// [`generate`](TraceGenerator::generate) to materialize a trace of the
/// requested length. The trait is object-safe so sweeps can iterate
/// over `&[&dyn TraceGenerator]`.
pub trait TraceGenerator {
    /// Short name used as the trace label and in report tables.
    fn name(&self) -> String;

    /// Generates `len` accesses over `self`'s item universe using the
    /// generator's seed (same seed → same trace).
    fn generate(&self, len: usize) -> Trace;
}

fn rw_kind(rng: &mut Rng, write_ratio: f64) -> AccessKind {
    if rng.gen_bool(write_ratio.clamp(0.0, 1.0)) {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// Uniform random accesses over `items` items.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformGen {
    /// Number of distinct items.
    pub items: usize,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UniformGen {
    /// Uniform reads over `items` items with the given seed.
    pub fn new(items: usize, seed: u64) -> Self {
        UniformGen {
            items,
            write_ratio: 0.0,
            seed,
        }
    }
}

impl TraceGenerator for UniformGen {
    fn name(&self) -> String {
        format!("uniform-{}", self.items)
    }

    fn generate(&self, len: usize) -> Trace {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut trace: Trace = (0..len)
            .map(|_| Access {
                item: (rng.gen_range(0..self.items.max(1)) as u32).into(),
                kind: rw_kind(&mut rng, self.write_ratio),
            })
            .collect();
        trace = trace.with_label(self.name());
        trace
    }
}

/// Zipf-distributed accesses: item `i` (0-based rank) is drawn with
/// probability proportional to `1 / (i + 1)^exponent`.
///
/// Sampling uses an explicit CDF and binary search, so no external
/// distribution crate is needed and the result is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfGen {
    /// Number of distinct items.
    pub items: usize,
    /// Skew exponent (0 = uniform; ≈1 = classic Zipf).
    pub exponent: f64,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ZipfGen {
    /// Zipf reads with the classic exponent 1.0.
    pub fn new(items: usize, seed: u64) -> Self {
        ZipfGen {
            items,
            exponent: 1.0,
            write_ratio: 0.0,
            seed,
        }
    }

    /// Sets the skew exponent.
    pub fn with_exponent(mut self, exponent: f64) -> Self {
        self.exponent = exponent;
        self
    }
}

impl TraceGenerator for ZipfGen {
    fn name(&self) -> String {
        format!("zipf-{}-s{:.2}", self.items, self.exponent)
    }

    fn generate(&self, len: usize) -> Trace {
        let zipf = Zipf::new(self.items.max(1), self.exponent);
        let mut rng = Rng::seed_from_u64(self.seed);
        let trace: Trace = (0..len)
            .map(|_| {
                let idx = zipf.sample(&mut rng);
                Access {
                    item: (idx as u32).into(),
                    kind: rw_kind(&mut rng, self.write_ratio),
                }
            })
            .collect();
        trace.with_label(self.name())
    }
}

/// Repeated sequential sweeps over `items` items (streaming pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequentialGen {
    /// Number of distinct items.
    pub items: usize,
}

impl SequentialGen {
    /// A sequential sweep generator.
    pub fn new(items: usize) -> Self {
        SequentialGen { items }
    }
}

impl TraceGenerator for SequentialGen {
    fn name(&self) -> String {
        format!("seq-{}", self.items)
    }

    fn generate(&self, len: usize) -> Trace {
        let trace: Trace = (0..len)
            .map(|t| Access::read((t % self.items.max(1)) as u32))
            .collect();
        trace.with_label(self.name())
    }
}

/// Strided accesses: item `(t * stride) mod items` at step `t`
/// (column-major array walks, banked FFT stages, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedGen {
    /// Number of distinct items.
    pub items: usize,
    /// Stride between consecutive accesses.
    pub stride: usize,
}

impl StridedGen {
    /// A strided generator.
    pub fn new(items: usize, stride: usize) -> Self {
        StridedGen { items, stride }
    }
}

impl TraceGenerator for StridedGen {
    fn name(&self) -> String {
        format!("stride-{}-by{}", self.items, self.stride)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let trace: Trace = (0..len)
            .map(|t| Access::read(((t * self.stride) % n) as u32))
            .collect();
        trace.with_label(self.name())
    }
}

/// Markov-cluster generator: items are grouped into clusters; the walk
/// stays inside its current cluster with probability `stay`, and jumps
/// to a uniformly random cluster otherwise.
///
/// This models the phase-local behaviour of real programs, which is the
/// structure adjacency-driven placement exploits: items co-accessed in
/// a phase should be co-located on the tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovGen {
    /// Number of distinct items.
    pub items: usize,
    /// Number of clusters items are divided into.
    pub clusters: usize,
    /// Probability of staying within the current cluster per step.
    pub stay: f64,
    /// Probability an access is a write.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl MarkovGen {
    /// A clustered walk with the given geometry and a default 0.9 stay
    /// probability.
    pub fn new(items: usize, clusters: usize, seed: u64) -> Self {
        MarkovGen {
            items,
            clusters: clusters.max(1),
            stay: 0.9,
            write_ratio: 0.0,
            seed,
        }
    }

    /// Sets the stay probability.
    pub fn with_stay(mut self, stay: f64) -> Self {
        self.stay = stay;
        self
    }
}

impl TraceGenerator for MarkovGen {
    fn name(&self) -> String {
        format!("markov-{}-c{}-p{:.2}", self.items, self.clusters, self.stay)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let k = self.clusters.min(n);
        let cluster_size = n.div_ceil(k);
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut cluster = 0usize;
        let trace: Trace = (0..len)
            .map(|_| {
                if !rng.gen_bool(self.stay.clamp(0.0, 1.0)) {
                    cluster = rng.gen_range(0..k);
                }
                let lo = cluster * cluster_size;
                let hi = ((cluster + 1) * cluster_size).min(n);
                let item = rng.gen_range(lo..hi.max(lo + 1)).min(n - 1);
                Access {
                    item: (item as u32).into(),
                    kind: rw_kind(&mut rng, self.write_ratio),
                }
            })
            .collect();
        trace.with_label(self.name())
    }
}

/// Phase-changing workload: the trace is split into `phases` segments,
/// each a clustered Markov walk over a *different affine shuffle* of
/// the item space, so the hot clusters of one phase are scattered in
/// the next.
///
/// This is the stress workload for static placement (no single layout
/// fits all phases) and the design case for
/// online/adaptive placement (experiment F10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasedGen {
    /// Number of distinct items.
    pub items: usize,
    /// Number of phases.
    pub phases: usize,
    /// Within-phase stay probability (cluster tightness).
    pub stay: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PhasedGen {
    /// A phased generator with the default 0.95 stay probability.
    pub fn new(items: usize, phases: usize, seed: u64) -> Self {
        PhasedGen {
            items,
            phases: phases.max(1),
            stay: 0.95,
            seed,
        }
    }
}

impl TraceGenerator for PhasedGen {
    fn name(&self) -> String {
        format!("phased-{}-p{}", self.items, self.phases)
    }

    fn generate(&self, len: usize) -> Trace {
        let n = self.items.max(1);
        let per_phase = len / self.phases;
        let mut accesses = Vec::with_capacity(len);
        for phase in 0..self.phases {
            let want = if phase + 1 == self.phases {
                len - accesses.len() // absorb rounding in the last phase
            } else {
                per_phase
            };
            let inner = MarkovGen::new(n, (n / 8).max(2), self.seed + phase as u64)
                .with_stay(self.stay)
                .generate(want);
            // Affine relabel: stride coprime with n scatters clusters.
            let stride = 2 * phase + 1;
            accesses.extend(inner.iter().map(|a| Access {
                item: (((a.item.index() * stride + 7 * phase) % n) as u32).into(),
                kind: a.kind,
            }));
        }
        Trace::from_accesses(accesses).with_label(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let g = UniformGen::new(32, 7);
        assert_eq!(g.generate(100), g.generate(100));
        let z = ZipfGen::new(32, 7);
        assert_eq!(z.generate(100), z.generate(100));
        let m = MarkovGen::new(32, 4, 7);
        assert_eq!(m.generate(100), m.generate(100));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            UniformGen::new(32, 1).generate(200),
            UniformGen::new(32, 2).generate(200)
        );
    }

    #[test]
    fn items_stay_in_range() {
        for trace in [
            UniformGen::new(10, 3).generate(500),
            ZipfGen::new(10, 3).generate(500),
            SequentialGen::new(10).generate(500),
            StridedGen::new(10, 3).generate(500),
            MarkovGen::new(10, 3, 3).generate(500),
        ] {
            assert!(
                trace.iter().all(|a| a.item.index() < 10),
                "{}",
                trace.label()
            );
            assert_eq!(trace.len(), 500);
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let z = ZipfGen::new(50, 11).generate(5000).normalize().stats();
        let u = UniformGen::new(50, 11).generate(5000).normalize().stats();
        assert!(z.hot20_share > u.hot20_share + 0.2);
    }

    #[test]
    fn markov_clusters_reduce_transition_spread() {
        let m = MarkovGen::new(64, 8, 5).with_stay(0.95).generate(5000);
        let u = UniformGen::new(64, 5).generate(5000);
        assert!(m.stats().mean_stride < u.stats().mean_stride);
    }

    #[test]
    fn sequential_wraps_around() {
        let t = SequentialGen::new(4).generate(10);
        let ids: Vec<u32> = t.iter().map(|a| a.item.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn write_ratio_produces_writes() {
        let g = UniformGen {
            items: 8,
            write_ratio: 1.0,
            seed: 1,
        };
        assert!(g.generate(50).iter().all(|a| a.kind.is_write()));
    }

    #[test]
    fn phased_generator_changes_adjacency_between_phases() {
        // The relabeling scatters *adjacency* (who is co-accessed with
        // whom), not item frequencies: the transition structure of
        // phase 1 must be a poor predictor of phase 2. We check that
        // the hot transitions of phase 1 are mostly absent in phase 2.
        let t = PhasedGen::new(64, 2, 3).generate(8000);
        assert_eq!(t.len(), 8000);
        assert!(t.iter().all(|a| a.item.index() < 64));
        let pair_set = |accs: &[Access]| -> std::collections::HashSet<(u32, u32)> {
            accs.windows(2)
                .filter(|p| p[0].item != p[1].item)
                .map(|p| {
                    let (a, b) = (p[0].item.0, p[1].item.0);
                    (a.min(b), a.max(b))
                })
                .collect()
        };
        let p1 = pair_set(&t.accesses()[..4000]);
        let p2 = pair_set(&t.accesses()[4000..]);
        let overlap = p1.intersection(&p2).count() as f64 / p1.len().max(1) as f64;
        assert!(
            overlap < 0.5,
            "phases share {:.0}% of their transition pairs",
            overlap * 100.0
        );
    }

    #[test]
    fn phased_generator_is_deterministic_and_exact_length() {
        let g = PhasedGen::new(32, 3, 9);
        assert_eq!(g.generate(1000), g.generate(1000));
        // 1000 not divisible by 3: last phase absorbs the remainder.
        assert_eq!(g.generate(1000).len(), 1000);
    }

    #[test]
    fn generators_usable_as_objects() {
        let gens: Vec<Box<dyn TraceGenerator>> = vec![
            Box::new(UniformGen::new(8, 1)),
            Box::new(SequentialGen::new(8)),
        ];
        for g in &gens {
            assert!(!g.name().is_empty());
            assert_eq!(g.generate(10).len(), 10);
        }
    }
}
