//! F10/F11: online placement and wear-leveling replay throughput.

use dwm_bench::markov_fixture;
use dwm_core::online::{OnlineConfig, OnlinePlacer};
use dwm_core::wear::{RotatingEvaluator, WearConfig};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_foundation::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::from_env("online").with_samples(10);
    for n in [64usize, 256] {
        let (trace, _) = markov_fixture(n);
        h.bench(&format!("online_placement/{n}"), || {
            OnlinePlacer::new(OnlineConfig::default()).run(black_box(&trace))
        });
    }
    let (trace, graph) = markov_fixture(64);
    let placement = Hybrid::default().place(&graph);
    for period in [0u64, 256, 64] {
        let config = if period == 0 {
            WearConfig::disabled()
        } else {
            WearConfig::every_writes(period, 64)
        };
        h.bench(&format!("wear_rotation/{period}"), || {
            RotatingEvaluator::new(config).evaluate(black_box(&placement), &trace)
        });
    }
    h.finish();
}
