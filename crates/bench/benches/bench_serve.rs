//! S17: `dwm-serve` request latency — memoized vs fresh solves, and
//! full loopback round-trips.
//!
//! `serve/solve_hit` and `serve/solve_miss` time the transport-free
//! [`Engine`] path, so their ratio is the value of the solve cache;
//! `serve/throughput` times one keep-alive round-trip of a cached
//! solve over a real loopback socket — the unit the CI smoke job's
//! req/s floor is made of.
//!
//! `serve/solve_hit_obs_off` repeats the hit path with metric
//! collection force-disabled; the gate bounds `solve_hit /
//! solve_hit_obs_off` at 1.05x, proving observability costs < 5%.
//! `serve/metrics_scrape` times a full `GET /metrics` render.
//!
//! `serve/session_ingest` (S19) times one 256-access chunk through the
//! transport-free streaming-session path: dense id remap, delta-graph
//! updates, phase detection, and one window-boundary decision per
//! call.

use dwm_bench::BENCH_SEED;
use dwm_foundation::bench::{black_box, Harness};
use dwm_foundation::net::Request;
use dwm_foundation::obs;
use dwm_serve::client::ClientConn;
use dwm_serve::{start, Engine, ServeConfig};
use dwm_trace::synth::{TraceGenerator, ZipfGen};

fn solve_body(items: usize, len: usize) -> String {
    let trace = ZipfGen::new(items, BENCH_SEED).generate(len);
    let ids: Vec<String> = trace.iter().map(|a| a.item.index().to_string()).collect();
    format!(r#"{{"algorithm":"hybrid","ids":[{}]}}"#, ids.join(","))
}

fn main() {
    let body = solve_body(48, 2400);
    let request = Request::post("/solve", body.clone().into_bytes());

    let mut h = Harness::from_env("serve");

    // Memoized path: the first call populates the cache, every timed
    // call is a fingerprint + shard lookup. The obs-on and obs-off
    // sides are sampled *alternately* (`bench_pair`) because the gate
    // bounds their ratio at 5% — a sequential layout would let a
    // transient load spike inflate one side alone. The override guard
    // inside each closure forces collection on/off per call (two
    // atomic swaps against a ~300 µs body: noise) so the pair measures
    // a real difference regardless of the ambient DWM_OBS.
    let cached = Engine::new(64);
    assert!(cached.handle(&request).is_success());
    {
        let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
        h.bench_pair(
            "serve/solve_hit",
            "serve/solve_hit_obs_off",
            || {
                let _on = obs::override_enabled(true);
                black_box(cached.handle(&request))
            },
            || {
                let _off = obs::override_enabled(false);
                black_box(cached.handle(&request))
            },
        );
    }

    // Prometheus render of the engine + global registries.
    {
        let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
        let _on = obs::override_enabled(true);
        let scrape = Request::new("GET", "/metrics");
        h.bench("serve/metrics_scrape", || black_box(cached.handle(&scrape)));
    }

    // Capacity 0 disables memoization, so every call runs the solver.
    let uncached = Engine::new(0);
    h.bench("serve/solve_miss", || black_box(uncached.handle(&request)));

    // Streaming ingest: the same 256-access chunk over and over, with
    // the window sized to the chunk so every call completes exactly
    // one decision window. Identical windows stop triggering phase
    // changes after the first, so the timed calls hit the steady-state
    // path: remap lookups, delta-graph bumps, detector pushes, one
    // boundary decision.
    let streaming = Engine::new(64);
    let create = Request::post("/session", r#"{"window":256}"#.as_bytes().to_vec());
    assert!(streaming.handle(&create).is_success());
    let ids: Vec<String> = (0..256).map(|i| ((i * 7) % 48).to_string()).collect();
    let ingest = Request::post(
        "/session/s-1/accesses",
        format!(r#"{{"ids":[{}]}}"#, ids.join(",")).into_bytes(),
    );
    assert!(streaming.handle(&ingest).is_success());
    h.bench("serve/session_ingest", || {
        black_box(streaming.handle(&ingest))
    });

    // Full loopback round-trip of the cached solve: framing, socket,
    // worker dispatch, cache hit, response.
    let handle = start(ServeConfig {
        workers: 2,
        cache_capacity: 64,
        ..ServeConfig::ephemeral()
    })
    .expect("loopback server starts");
    let mut conn = ClientConn::connect(handle.local_addr()).expect("connect");
    assert!(conn
        .post_json("/solve", body.as_str())
        .expect("prime")
        .is_success());
    h.bench("serve/throughput", || {
        black_box(conn.post_json("/solve", body.as_str()).expect("round-trip"))
    });
    handle.shutdown();
    handle.join();

    h.finish();
}
