//! Memory access traces for domain-wall-memory placement studies.
//!
//! The placement problem consumes a *trace*: the ordered sequence of
//! data-item accesses a workload performs. This crate provides
//!
//! * [`Trace`], [`Access`], [`ItemId`] — the trace representation with
//!   statistics, normalization, and (de)serialization;
//! * [`synth`] — seeded synthetic generators (uniform, Zipf, sequential,
//!   strided, Markov-cluster) used for sensitivity sweeps;
//! * [`kernels`] — benchmark kernels (matrix multiply, FFT, sorting,
//!   stencil, histogram, string matching, LU, BFS) that execute the real
//!   algorithm and emit its true data access order. These substitute for
//!   the compiled-benchmark traces used in the original evaluation; see
//!   `DESIGN.md` §2 for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use dwm_trace::{Trace, kernels::Kernel};
//!
//! let trace = Kernel::MatMul { n: 4, block: 2 }.trace();
//! assert!(trace.len() > 0);
//! let stats = trace.stats();
//! assert!(stats.distinct_items <= 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod analysis;
pub mod io;
pub mod kernels;
pub mod profile;
mod stats;
pub mod synth;

pub use access::{Access, AccessKind, ItemId, Trace};
pub use profile::{Fidelity, ProfileBuilder, TraceProfile, PROFILE_VERSION};
pub use stats::TraceStats;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::analysis::{detect_phases, working_set_curve, PhaseDetector, ReuseProfile};
    pub use crate::kernels::Kernel;
    pub use crate::profile::{Fidelity, ProfileBuilder, TraceProfile};
    pub use crate::synth::{
        MarkovGen, PhasedGen, ProfiledGen, SequentialGen, StridedGen, TraceGenerator, UniformGen,
        ZipfGen,
    };
    pub use crate::{Access, AccessKind, ItemId, Trace, TraceStats};
}
