//! Exact optimal placement by dynamic programming over vertex subsets.
//!
//! The optimality-gap study (experiment T4) needs the true optimum on
//! small instances. The original evaluation used an ILP solver; this
//! reproduction uses an equivalent subset DP (documented substitution
//! in `DESIGN.md` §2), which produces the same optimum without an
//! external solver.
//!
//! # The recurrence
//!
//! The linear arrangement cost of an order `v_1 … v_n` can be rewritten
//! as a sum of prefix cuts:
//!
//! ```text
//! Σ_{(u,v)∈E} w(u,v)·|pos(u) − pos(v)|  =  Σ_{i=1}^{n−1} cut({v_1…v_i})
//! ```
//!
//! because an edge spanning distance `d` crosses exactly `d` prefix
//! boundaries. Hence the minimum over orders satisfies
//!
//! ```text
//! f(S) = cut(S) + min_{v ∈ S} f(S ∖ {v}),     f(∅) = −cut(∅) = 0
//! ```
//!
//! where `f(S)` is the best cost of arranging the items of `S` in the
//! first `|S|` positions. `cut(S)` itself satisfies the incremental
//! identity `cut(S) = cut(S∖{v}) + deg(v) − 2·w(v, S∖{v})`, so the
//! whole table fills in `O(2ⁿ·n)` time and `O(2ⁿ)` space.

use dwm_graph::{AccessGraph, CsrGraph};

use crate::error::PlacementError;
use crate::placement::Placement;

/// Hard limit on the exact solver's instance size (`2^24` table
/// entries ≈ 450 MB would be the next step up; 20 keeps runtime and
/// memory comfortable for the optimality study).
pub const MAX_EXACT_ITEMS: usize = 20;

/// Computes a provably optimal placement for `graph`.
///
/// # Errors
///
/// Returns [`PlacementError::TooLargeForExact`] when the graph has more
/// than [`MAX_EXACT_ITEMS`] items.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::path_graph;
/// use dwm_core::exact::optimal_placement;
///
/// let g = path_graph(8, 2);
/// let (placement, cost) = optimal_placement(&g)?;
/// // A path's optimal arrangement is the path itself: 7 edges × 2.
/// assert_eq!(cost, 14);
/// assert_eq!(g.arrangement_cost(placement.offsets()), 14);
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
pub fn optimal_placement(graph: &AccessGraph) -> Result<(Placement, u64), PlacementError> {
    let n = graph.num_items();
    if n > MAX_EXACT_ITEMS {
        return Err(PlacementError::TooLargeForExact {
            items: n,
            limit: MAX_EXACT_ITEMS,
        });
    }
    if n == 0 {
        return Ok((Placement::identity(0), 0));
    }
    // Freeze once; the DP's inner loop streams flat neighbour slices.
    let csr = CsrGraph::freeze(graph);

    let full: usize = if n == usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << n) - 1
    };
    let size = full + 1;

    // cut[s] = weight of edges crossing between s and its complement.
    let mut cut = vec![0u64; size];
    // f[s] = min cost of arranging the items of s in the first |s|
    // positions; parent[s] = the item placed last among s in the optimum.
    let mut f = vec![u64::MAX; size];
    let mut parent = vec![u8::MAX; size];
    f[0] = 0;

    for s in 1..size {
        let low = s.trailing_zeros() as usize;
        let rest = s & (s - 1); // s without its lowest set bit
                                // w(low, rest): weight from `low` into the rest of the subset.
        let mut w_into = 0u64;
        let (vs, ws) = csr.neighbor_slices(low);
        for (&v, &w) in vs.iter().zip(ws) {
            if rest >> v & 1 == 1 {
                w_into += w;
            }
        }
        cut[s] = cut[rest] + csr.degree(low) - 2 * w_into;

        // f(s) = cut(s) + min over last-removed v of f(s \ v).
        let mut best = u64::MAX;
        let mut best_v = u8::MAX;
        let mut t = s;
        while t != 0 {
            let v = t.trailing_zeros() as usize;
            t &= t - 1;
            let prev = f[s & !(1 << v)];
            if prev < best {
                best = prev;
                best_v = v as u8;
            }
        }
        // cut(full set) is 0, so adding it for s == full is harmless
        // and keeps the recurrence uniform.
        f[s] = best + cut[s];
        parent[s] = best_v;
    }

    // Reconstruct the order back-to-front.
    let mut order = vec![0usize; n];
    let mut s = full;
    for pos in (0..n).rev() {
        let v = parent[s] as usize;
        order[pos] = v;
        s &= !(1 << v);
    }
    let placement = Placement::from_order(order);
    let cost = f[full];
    debug_assert_eq!(graph.arrangement_cost(placement.offsets()), cost);
    Ok((placement, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{
        ChainGrowth, GroupedChainGrowth, OrganPipe, PlacementAlgorithm, Spectral,
    };
    use dwm_graph::generators::{clustered_graph, path_graph, random_graph};

    #[test]
    fn optimum_on_path_is_the_path() {
        let g = path_graph(9, 3);
        let (p, cost) = optimal_placement(&g).unwrap();
        assert_eq!(cost, 8 * 3);
        assert_eq!(g.arrangement_cost(p.offsets()), cost);
    }

    #[test]
    fn optimum_matches_brute_force_on_small_graphs() {
        use std::collections::HashSet;
        for seed in 0..5 {
            let g = random_graph(7, 0.5, 6, seed);
            let (p, cost) = optimal_placement(&g).unwrap();
            assert_eq!(g.arrangement_cost(p.offsets()), cost);
            // Brute force all 7! orders.
            let mut best = u64::MAX;
            let mut order = [0usize; 7];
            permute(&mut order, 0, &mut HashSet::new(), &g, &mut best);
            assert_eq!(cost, best, "seed {seed}");
        }
    }

    fn permute(
        order: &mut [usize; 7],
        depth: usize,
        used: &mut std::collections::HashSet<usize>,
        g: &AccessGraph,
        best: &mut u64,
    ) {
        if depth == 7 {
            let mut pos = [0usize; 7];
            for (off, &item) in order.iter().enumerate() {
                pos[item] = off;
            }
            *best = (*best).min(g.arrangement_cost(&pos));
            return;
        }
        for v in 0..7 {
            if used.insert(v) {
                order[depth] = v;
                permute(order, depth + 1, used, g, best);
                used.remove(&v);
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_optimum() {
        for seed in 0..8 {
            let g = clustered_graph(10, 3, 0.8, 0.15, 5, seed);
            let (_, opt) = optimal_placement(&g).unwrap();
            for alg in [
                &ChainGrowth as &dyn PlacementAlgorithm,
                &GroupedChainGrowth,
                &OrganPipe,
                &Spectral::default(),
            ] {
                let cost = g.arrangement_cost(alg.place(&g).offsets());
                assert!(cost >= opt, "{} below optimum on seed {seed}", alg.name());
            }
        }
    }

    #[test]
    fn too_large_instances_are_rejected() {
        let g = AccessGraph::with_items(MAX_EXACT_ITEMS + 1);
        assert!(matches!(
            optimal_placement(&g),
            Err(PlacementError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn empty_and_singleton() {
        let (p, c) = optimal_placement(&AccessGraph::with_items(0)).unwrap();
        assert_eq!((p.num_items(), c), (0, 0));
        let (p, c) = optimal_placement(&AccessGraph::with_items(1)).unwrap();
        assert_eq!((p.num_items(), c), (1, 0));
    }

    #[test]
    fn optimum_is_mirror_invariant() {
        let g = random_graph(8, 0.6, 4, 99);
        let (mut p, cost) = optimal_placement(&g).unwrap();
        p.mirror();
        assert_eq!(g.arrangement_cost(p.offsets()), cost);
    }
}
