//! F4/F5: cost-model replay across tape lengths and port counts.

use dwm_bench::markov_fixture;
use dwm_core::cost::{CostModel, MultiPortCost, SinglePortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_foundation::bench::{black_box, Harness};

fn main() {
    let mut h = Harness::from_env("sweep");
    for l in [16usize, 64, 256] {
        let (trace, graph) = markov_fixture(l);
        let placement = Hybrid::default().place(&graph);
        let model = SinglePortCost::new();
        h.bench(&format!("replay_tape_length/{l}"), || {
            model.trace_cost(black_box(&placement), black_box(&trace))
        });
    }
    let (trace, graph) = markov_fixture(64);
    let placement = Hybrid::default().place(&graph);
    for ports in [1usize, 2, 4, 8] {
        let model = MultiPortCost::evenly_spaced(ports, 64);
        h.bench(&format!("replay_ports/{ports}"), || {
            model.trace_cost(black_box(&placement), &trace)
        });
    }
    h.finish();
}
