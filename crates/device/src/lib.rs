//! Domain-wall (racetrack) memory device model.
//!
//! Domain-wall memory (DWM) stores data as magnetic domains along a
//! nanowire *track*. Each track has one or a few fixed *access ports*;
//! reading or writing a bit requires the bit to sit directly under a
//! port, which is achieved by sending a shift current that moves the
//! whole domain train left or right. Shifts dominate DWM latency and
//! energy, so the number of shifts an access pattern incurs is the
//! figure of merit this workspace optimizes.
//!
//! Tracks are grouped into *domain-block clusters* ([`Dbc`]): `W`
//! parallel tracks whose domains shift in lockstep so that the `W` bits
//! of a machine word occupy the same offset on `W` adjacent tracks. A
//! DBC with `L` domains per track stores `L` words and behaves like a
//! tiny tape: word `o` is accessible through port `p` only after the
//! tape has been shifted to displacement `o - position(p)`.
//!
//! This crate provides:
//!
//! * [`DeviceConfig`] — validated device geometry, timing, and energy
//!   parameters (defaults follow the 2013–2015 DWM literature);
//! * [`Track`] and [`Dbc`] — functional bit-level models with shift
//!   state, padding domains, and wear counters;
//! * [`PortLayout`] and the [`shift`] module — the pure distance
//!   arithmetic shared by the analytic cost models and the simulator;
//! * [`AccessEnergy`]/[`AccessLatency`] — projection of shift counts
//!   into nanojoules and nanoseconds.
//!
//! # Example
//!
//! ```
//! use dwm_device::{DeviceConfig, Dbc};
//!
//! let config = DeviceConfig::builder()
//!     .domains_per_track(32)
//!     .tracks_per_dbc(16)
//!     .ports(1)
//!     .build()?;
//! let mut dbc = Dbc::new(&config);
//! dbc.write(5, 0xABCD)?;
//! assert_eq!(dbc.read(5)?, 0xABCD);
//! // Reading offset 5 through the single port at position 0 required
//! // shifting the tape by 5 domains.
//! assert_eq!(dbc.stats().shifts, 5);
//! # Ok::<(), dwm_device::DeviceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dbc;
mod energy;
mod error;
pub mod fault;
mod port;
pub mod shift;
mod stats;
pub mod topology;
mod track;

pub use config::{DeviceConfig, DeviceConfigBuilder, EnergyConfig, TimingConfig};
pub use dbc::Dbc;
pub use energy::{AccessEnergy, AccessLatency, CostProjection};
pub use error::DeviceError;
pub use fault::{FaultInjector, ShiftFaultModel};
pub use port::{PortCapability, PortId, PortLayout, TypedPortLayout};
pub use stats::ShiftStats;
pub use topology::{
    TapeState, Topology, TopologyKind, TopologyPlan, TopologyReplayer, TrackTopology,
};
pub use track::Track;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::{
        AccessEnergy, AccessLatency, CostProjection, Dbc, DeviceConfig, DeviceError, FaultInjector,
        PortCapability, PortId, PortLayout, ShiftFaultModel, ShiftStats, TapeState, Topology,
        TopologyKind, TopologyPlan, TopologyReplayer, Track, TrackTopology, TypedPortLayout,
    };
}
