//! Benchmark kernels that emit their true data-access traces.
//!
//! Each kernel *executes the real algorithm* over synthetic inputs and
//! records every data-item touch in program order. Data items are
//! array blocks (a few machine words each), matching the granularity at
//! which a compiler allocates scratchpad-resident data to DWM offsets.
//!
//! The eight kernels in [`Kernel::suite`] are the workload set used by
//! the headline experiments (T2/T3/F3): dense linear algebra (`MatMul`,
//! `Lu`), signal processing (`Fft`), sorting (`InsertionSort`,
//! `MergeSort`), stencil computation (`Stencil2d`), data aggregation
//! (`Histogram`), and pointer/irregular traversal (`Bfs`).
//!
//! All traces come out [normalized](crate::Trace::normalize): item ids
//! are dense in first-touch order, so the identity placement *is* the
//! naive order-of-appearance placement the paper compares against.

use dwm_foundation::Rng;

use crate::access::Trace;

/// Internal recorder with base-offset bookkeeping for multi-array
/// kernels: array `k`'s block `b` gets raw id `base_k + b`, densified
/// at the end by [`Trace::normalize`].
#[derive(Debug, Default)]
struct Recorder {
    trace: Trace,
}

impl Recorder {
    fn read(&mut self, id: usize) {
        self.trace.record_read(id as u32);
    }

    fn write(&mut self, id: usize) {
        self.trace.record_write(id as u32);
    }

    fn finish(self, label: &str) -> Trace {
        self.trace.normalize().with_label(label)
    }
}

/// A benchmark kernel together with its size parameters.
///
/// Call [`trace`](Kernel::trace) to execute the kernel and obtain its
/// access sequence.
///
/// # Example
///
/// ```
/// use dwm_trace::kernels::Kernel;
///
/// let t = Kernel::InsertionSort { n: 16, seed: 1 }.trace();
/// assert_eq!(t.label(), "insertion-sort");
/// assert!(t.stats().distinct_items <= 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Kernel {
    /// Blocked dense matrix multiply `C = A·B` on `n×n` matrices with
    /// `block×block` tiles; items are tiles of A, B, and C.
    MatMul {
        /// Matrix dimension.
        n: usize,
        /// Tile edge length (must divide `n`).
        block: usize,
    },
    /// Iterative radix-2 FFT over `n` complex points (`n` a power of
    /// two); items are point blocks of `block` points.
    Fft {
        /// Number of points.
        n: usize,
        /// Points per data item.
        block: usize,
    },
    /// Insertion sort of `n` random keys; items are the keys.
    InsertionSort {
        /// Number of keys.
        n: usize,
        /// RNG seed for the key values.
        seed: u64,
    },
    /// Bottom-up merge sort of `n` random keys with an auxiliary
    /// buffer; items are blocks of `block` keys from both buffers.
    MergeSort {
        /// Number of keys.
        n: usize,
        /// Keys per data item.
        block: usize,
        /// RNG seed for the key values.
        seed: u64,
    },
    /// One Jacobi sweep of a 5-point stencil on a `rows×cols` grid;
    /// items are `block`-cell chunks of the input and output grids.
    Stencil2d {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Cells per data item.
        block: usize,
    },
    /// Histogram of `samples` Zipf-skewed samples into `bins` bins;
    /// items are the bins (read-modify-write per sample).
    Histogram {
        /// Number of bins.
        bins: usize,
        /// Number of input samples.
        samples: usize,
        /// RNG seed for the sample stream.
        seed: u64,
    },
    /// Gaussian elimination (LU, no pivoting) of an `n×n` matrix;
    /// items are matrix rows.
    Lu {
        /// Matrix dimension.
        n: usize,
    },
    /// Breadth-first search over a random connected graph of `nodes`
    /// nodes; items are per-node adjacency records.
    Bfs {
        /// Number of graph nodes.
        nodes: usize,
        /// Average out-degree of the random graph.
        degree: usize,
        /// RNG seed for the graph structure.
        seed: u64,
    },
    /// 2-D convolution of a `rows×cols` image with a `k×k` kernel;
    /// items are `block`-pixel chunks of image, kernel, and output.
    Conv2d {
        /// Image rows.
        rows: usize,
        /// Image columns.
        cols: usize,
        /// Convolution kernel edge (odd).
        k: usize,
        /// Pixels per data item.
        block: usize,
    },
    /// One Lloyd iteration of k-means over `points` 1-D points and
    /// `clusters` centroids; items are point blocks and centroids.
    KMeans {
        /// Number of points.
        points: usize,
        /// Number of centroids.
        clusters: usize,
        /// Points per data item.
        block: usize,
        /// RNG seed for the point coordinates.
        seed: u64,
    },
    /// Dijkstra single-source shortest paths on a random weighted
    /// graph; items are per-node records plus a binary-heap array.
    Dijkstra {
        /// Number of graph nodes.
        nodes: usize,
        /// Average out-degree.
        degree: usize,
        /// RNG seed for the graph.
        seed: u64,
    },
    /// Sparse matrix-vector product `y = A·x` in CSR form; items are
    /// row records of A plus blocks of x and y.
    Spmv {
        /// Matrix dimension.
        n: usize,
        /// Nonzeros per row.
        nnz_per_row: usize,
        /// Entries of x/y per data item.
        block: usize,
        /// RNG seed for the sparsity pattern.
        seed: u64,
    },
    /// Naive string search of a `pattern_len`-byte pattern in a
    /// `text_len`-byte text; items are `block`-byte chunks.
    StringMatch {
        /// Text length in bytes.
        text_len: usize,
        /// Pattern length in bytes.
        pattern_len: usize,
        /// Bytes per data item.
        block: usize,
        /// RNG seed for the text contents.
        seed: u64,
    },
}

impl Kernel {
    /// Short, stable name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::MatMul { .. } => "matmul",
            Kernel::Fft { .. } => "fft",
            Kernel::InsertionSort { .. } => "insertion-sort",
            Kernel::MergeSort { .. } => "merge-sort",
            Kernel::Stencil2d { .. } => "stencil2d",
            Kernel::Histogram { .. } => "histogram",
            Kernel::Lu { .. } => "lu",
            Kernel::Bfs { .. } => "bfs",
            Kernel::Conv2d { .. } => "conv2d",
            Kernel::KMeans { .. } => "kmeans",
            Kernel::Dijkstra { .. } => "dijkstra",
            Kernel::Spmv { .. } => "spmv",
            Kernel::StringMatch { .. } => "string-match",
        }
    }

    /// The standard eight-kernel workload suite used by the
    /// experiments, sized so every trace fits a 64-word DBC.
    pub fn suite() -> Vec<Kernel> {
        vec![
            Kernel::MatMul { n: 8, block: 2 },
            Kernel::Fft { n: 32, block: 1 },
            Kernel::InsertionSort {
                n: 24,
                seed: 0xDAC2015,
            },
            Kernel::MergeSort {
                n: 32,
                block: 2,
                seed: 0xDAC2015,
            },
            Kernel::Stencil2d {
                rows: 8,
                cols: 8,
                block: 2,
            },
            Kernel::Histogram {
                bins: 48,
                samples: 600,
                seed: 0xDAC2015,
            },
            Kernel::Lu { n: 16 },
            Kernel::Bfs {
                nodes: 48,
                degree: 3,
                seed: 0xDAC2015,
            },
        ]
    }

    /// Executes the kernel and returns its normalized access trace.
    ///
    /// # Panics
    ///
    /// Panics if the size parameters are degenerate (zero sizes, tile
    /// not dividing the matrix, FFT size not a power of two).
    pub fn trace(&self) -> Trace {
        match *self {
            Kernel::MatMul { n, block } => matmul(n, block),
            Kernel::Fft { n, block } => fft(n, block),
            Kernel::InsertionSort { n, seed } => insertion_sort(n, seed),
            Kernel::MergeSort { n, block, seed } => merge_sort(n, block, seed),
            Kernel::Stencil2d { rows, cols, block } => stencil2d(rows, cols, block),
            Kernel::Histogram {
                bins,
                samples,
                seed,
            } => histogram(bins, samples, seed),
            Kernel::Lu { n } => lu(n),
            Kernel::Bfs {
                nodes,
                degree,
                seed,
            } => bfs(nodes, degree, seed),
            Kernel::Conv2d {
                rows,
                cols,
                k,
                block,
            } => conv2d(rows, cols, k, block),
            Kernel::KMeans {
                points,
                clusters,
                block,
                seed,
            } => kmeans(points, clusters, block, seed),
            Kernel::Dijkstra {
                nodes,
                degree,
                seed,
            } => dijkstra(nodes, degree, seed),
            Kernel::Spmv {
                n,
                nnz_per_row,
                block,
                seed,
            } => spmv(n, nnz_per_row, block, seed),
            Kernel::StringMatch {
                text_len,
                pattern_len,
                block,
                seed,
            } => string_match(text_len, pattern_len, block, seed),
        }
    }

    /// Six further kernels extending [`Kernel::suite`] (experiment T7):
    /// image processing, clustering, shortest paths, sparse algebra,
    /// and text search. Sized for a 64-word DBC like the base suite.
    pub fn extended_suite() -> Vec<Kernel> {
        vec![
            Kernel::Conv2d {
                rows: 6,
                cols: 6,
                k: 3,
                block: 2,
            },
            Kernel::KMeans {
                points: 96,
                clusters: 8,
                block: 2,
                seed: 0xDAC2015,
            },
            Kernel::Dijkstra {
                nodes: 28,
                degree: 3,
                seed: 0xDAC2015,
            },
            Kernel::Spmv {
                n: 24,
                nnz_per_row: 4,
                block: 2,
                seed: 0xDAC2015,
            },
            Kernel::StringMatch {
                text_len: 96,
                pattern_len: 8,
                block: 2,
                seed: 0xDAC2015,
            },
        ]
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn matmul(n: usize, block: usize) -> Trace {
    assert!(
        n > 0 && block > 0 && n.is_multiple_of(block),
        "block must divide n"
    );
    let nb = n / block;
    let tiles = nb * nb;
    let (a0, b0, c0) = (0, tiles, 2 * tiles);
    let tile = |base: usize, i: usize, j: usize| base + i * nb + j;
    let mut rec = Recorder::default();
    // Blocked i-j-k loop: C[i][j] += A[i][k] * B[k][j].
    for i in 0..nb {
        for j in 0..nb {
            rec.read(tile(c0, i, j));
            for k in 0..nb {
                rec.read(tile(a0, i, k));
                rec.read(tile(b0, k, j));
                rec.write(tile(c0, i, j));
            }
        }
    }
    rec.finish("matmul")
}

fn fft(n: usize, block: usize) -> Trace {
    assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
    assert!(block > 0);
    let item = |i: usize| i / block;
    let mut rec = Recorder::default();
    // Bit-reversal permutation pass.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            rec.read(item(i));
            rec.read(item(j));
            rec.write(item(i));
            rec.write(item(j));
        }
    }
    // log2(n) butterfly stages.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let u = start + k;
                let v = start + k + half;
                rec.read(item(u));
                rec.read(item(v));
                rec.write(item(u));
                rec.write(item(v));
            }
        }
        len *= 2;
    }
    rec.finish("fft")
}

fn insertion_sort(n: usize, seed: u64) -> Trace {
    assert!(n > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let mut keys: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    let mut rec = Recorder::default();
    for i in 1..n {
        rec.read(i);
        let key = keys[i];
        let mut j = i;
        while j > 0 {
            rec.read(j - 1);
            if keys[j - 1] <= key {
                break;
            }
            keys[j] = keys[j - 1];
            rec.write(j);
            j -= 1;
        }
        keys[j] = key;
        rec.write(j);
    }
    rec.finish("insertion-sort")
}

fn merge_sort(n: usize, block: usize, seed: u64) -> Trace {
    assert!(n > 0 && block > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let mut src: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    let mut dst = vec![0u32; n];
    let src_item = |i: usize| i / block;
    let dst_item = |i: usize| n.div_ceil(block) + i / block;
    let mut rec = Recorder::default();
    let mut width = 1usize;
    let mut flipped = false;
    while width < n {
        for lo in (0..n).step_by(2 * width) {
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let (mut i, mut j) = (lo, mid);
            // The merge cursor really is an index into both buffers.
            #[allow(clippy::needless_range_loop)]
            for k in lo..hi {
                let take_left = j >= hi || (i < mid && src[i] <= src[j]);
                if i < mid {
                    rec.read(if flipped { dst_item(i) } else { src_item(i) });
                }
                if j < hi {
                    rec.read(if flipped { dst_item(j) } else { src_item(j) });
                }
                if take_left {
                    dst[k] = src[i];
                    i += 1;
                } else {
                    dst[k] = src[j];
                    j += 1;
                }
                rec.write(if flipped { src_item(k) } else { dst_item(k) });
            }
        }
        std::mem::swap(&mut src, &mut dst);
        flipped = !flipped;
        width *= 2;
    }
    rec.finish("merge-sort")
}

fn stencil2d(rows: usize, cols: usize, block: usize) -> Trace {
    assert!(rows > 0 && cols > 0 && block > 0);
    let cells = rows * cols;
    let input = |r: usize, c: usize| (r * cols + c) / block;
    let output = |r: usize, c: usize| cells.div_ceil(block) + (r * cols + c) / block;
    let mut rec = Recorder::default();
    for r in 0..rows {
        for c in 0..cols {
            rec.read(input(r, c));
            if r > 0 {
                rec.read(input(r - 1, c));
            }
            if r + 1 < rows {
                rec.read(input(r + 1, c));
            }
            if c > 0 {
                rec.read(input(r, c - 1));
            }
            if c + 1 < cols {
                rec.read(input(r, c + 1));
            }
            rec.write(output(r, c));
        }
    }
    rec.finish("stencil2d")
}

fn histogram(bins: usize, samples: usize, seed: u64) -> Trace {
    assert!(bins > 0);
    // Zipf-skewed bin selection: a few bins are hit constantly, the
    // classic case where frequency-aware placement shines.
    let mut cdf = Vec::with_capacity(bins);
    let mut acc = 0.0f64;
    for i in 0..bins {
        acc += 1.0 / (i + 1) as f64;
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = Rng::seed_from_u64(seed);
    let mut rec = Recorder::default();
    for _ in 0..samples {
        let u: f64 = rng.gen::<f64>() * total;
        let bin = cdf.partition_point(|&c| c < u).min(bins - 1);
        rec.read(bin);
        rec.write(bin);
    }
    rec.finish("histogram")
}

fn lu(n: usize) -> Trace {
    assert!(n > 1);
    let mut rec = Recorder::default();
    // Row items: factorization touches pivot row k and each row i > k.
    for k in 0..n - 1 {
        rec.read(k); // pivot row
        for i in k + 1..n {
            rec.read(i); // load row i
            rec.read(k); // pivot row again for the elimination
            rec.write(i); // updated row i
        }
    }
    rec.finish("lu")
}

fn bfs(nodes: usize, degree: usize, seed: u64) -> Trace {
    assert!(nodes > 1 && degree > 0);
    let mut rng = Rng::seed_from_u64(seed);
    // Random connected graph: a ring plus `degree-1` random chords per
    // node, deduplicated.
    let mut adj: Vec<Vec<usize>> = (0..nodes)
        .map(|v| vec![(v + 1) % nodes, (v + nodes - 1) % nodes])
        .collect();
    for v in 0..nodes {
        for _ in 0..degree.saturating_sub(1) {
            let w = rng.gen_range(0..nodes);
            if w != v && !adj[v].contains(&w) {
                adj[v].push(w);
                adj[w].push(v);
            }
        }
    }
    let mut rec = Recorder::default();
    let mut visited = vec![false; nodes];
    let mut queue = std::collections::VecDeque::new();
    visited[0] = true;
    queue.push_back(0usize);
    while let Some(v) = queue.pop_front() {
        rec.read(v); // fetch v's adjacency record
        for &w in &adj[v] {
            rec.read(w); // inspect neighbour record (visited flag)
            if !visited[w] {
                visited[w] = true;
                rec.write(w); // mark visited / set parent
                queue.push_back(w);
            }
        }
    }
    rec.finish("bfs")
}

fn conv2d(rows: usize, cols: usize, k: usize, block: usize) -> Trace {
    assert!(rows > 0 && cols > 0 && block > 0);
    assert!(
        k % 2 == 1 && k <= rows && k <= cols,
        "kernel must be odd and fit"
    );
    let image_items = (rows * cols).div_ceil(block);
    let kernel_items = (k * k).div_ceil(block);
    let image = |r: usize, c: usize| (r * cols + c) / block;
    let filter = |i: usize, j: usize| image_items + (i * k + j) / block;
    let output = |r: usize, c: usize| image_items + kernel_items + (r * cols + c) / block;
    let half = k / 2;
    let mut rec = Recorder::default();
    for r in half..rows - half {
        for c in half..cols - half {
            for i in 0..k {
                for j in 0..k {
                    rec.read(image(r + i - half, c + j - half));
                    rec.read(filter(i, j));
                }
            }
            rec.write(output(r, c));
        }
    }
    rec.finish("conv2d")
}

fn kmeans(points: usize, clusters: usize, block: usize, seed: u64) -> Trace {
    assert!(points > 0 && clusters > 0 && block > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let coords: Vec<f64> = (0..points).map(|_| rng.gen::<f64>()).collect();
    let mut centroids: Vec<f64> = (0..clusters).map(|_| rng.gen::<f64>()).collect();
    let point_item = |p: usize| p / block;
    let centroid_item = |c: usize| points.div_ceil(block) + c;
    let mut rec = Recorder::default();
    // Assignment step: every point reads all centroids.
    let mut assignment = vec![0usize; points];
    for p in 0..points {
        rec.read(point_item(p));
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, &centroid) in centroids.iter().enumerate() {
            rec.read(centroid_item(c));
            let d = (coords[p] - centroid).abs();
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        assignment[p] = best;
    }
    // Update step: accumulate into the assigned centroid.
    let mut sums = vec![0.0f64; clusters];
    let mut counts = vec![0usize; clusters];
    for p in 0..points {
        rec.read(point_item(p));
        let c = assignment[p];
        sums[c] += coords[p];
        counts[c] += 1;
        rec.write(centroid_item(c));
    }
    for c in 0..clusters {
        if counts[c] > 0 {
            centroids[c] = sums[c] / counts[c] as f64;
        }
        rec.write(centroid_item(c));
    }
    rec.finish("kmeans")
}

fn dijkstra(nodes: usize, degree: usize, seed: u64) -> Trace {
    assert!(nodes > 1 && degree > 0);
    let mut rng = Rng::seed_from_u64(seed);
    // Connected weighted graph: ring + random chords.
    let mut adj: Vec<Vec<(usize, u64)>> = (0..nodes)
        .map(|v| {
            vec![
                ((v + 1) % nodes, 1 + rng.gen_range(0..9) as u64),
                ((v + nodes - 1) % nodes, 1 + rng.gen_range(0..9) as u64),
            ]
        })
        .collect();
    for v in 0..nodes {
        for _ in 0..degree.saturating_sub(1) {
            let w = rng.gen_range(0..nodes);
            if w != v {
                let cost = 1 + rng.gen_range(0..9) as u64;
                adj[v].push((w, cost));
                adj[w].push((v, cost));
            }
        }
    }
    // Items: per-node records, then the dist array in blocks of 4.
    let node_item = |v: usize| v;
    let dist_item = |v: usize| nodes + v / 4;
    let mut rec = Recorder::default();
    let mut dist = vec![u64::MAX; nodes];
    let mut done = vec![false; nodes];
    dist[0] = 0;
    rec.write(dist_item(0));
    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u64, 0usize)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if done[v] {
            continue;
        }
        done[v] = true;
        rec.read(node_item(v)); // fetch adjacency record
        for &(w, cost) in &adj[v] {
            rec.read(dist_item(w));
            if d + cost < dist[w] {
                dist[w] = d + cost;
                rec.write(dist_item(w));
                heap.push(std::cmp::Reverse((dist[w], w)));
            }
        }
    }
    rec.finish("dijkstra")
}

fn spmv(n: usize, nnz_per_row: usize, block: usize, seed: u64) -> Trace {
    assert!(n > 0 && nnz_per_row > 0 && block > 0);
    let mut rng = Rng::seed_from_u64(seed);
    let row_item = |r: usize| r;
    let x_item = |i: usize| n + i / block;
    let y_item = |i: usize| n + n.div_ceil(block) + i / block;
    let mut rec = Recorder::default();
    for r in 0..n {
        rec.read(row_item(r)); // row pointer + values
        for _ in 0..nnz_per_row {
            let col = rng.gen_range(0..n);
            rec.read(x_item(col));
        }
        rec.write(y_item(r));
    }
    rec.finish("spmv")
}

fn string_match(text_len: usize, pattern_len: usize, block: usize, seed: u64) -> Trace {
    assert!(text_len >= pattern_len && pattern_len > 0 && block > 0);
    let mut rng = Rng::seed_from_u64(seed);
    // Small alphabet so partial matches actually happen.
    let text: Vec<u8> = (0..text_len).map(|_| rng.gen_range(b'a'..=b'c')).collect();
    let pattern: Vec<u8> = (0..pattern_len)
        .map(|_| rng.gen_range(b'a'..=b'c'))
        .collect();
    let text_item = |i: usize| i / block;
    let pattern_item = |j: usize| text_len.div_ceil(block) + j / block;
    let mut rec = Recorder::default();
    for start in 0..=(text_len - pattern_len) {
        for j in 0..pattern_len {
            rec.read(text_item(start + j));
            rec.read(pattern_item(j));
            if text[start + j] != pattern[j] {
                break;
            }
        }
    }
    rec.finish("string-match")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_distinctly_named_kernels() {
        let suite = Kernel::suite();
        assert_eq!(suite.len(), 8);
        let mut names: Vec<_> = suite.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn suite_traces_fit_a_64_word_dbc() {
        for k in Kernel::suite() {
            let t = k.trace();
            let s = t.stats();
            assert!(
                s.distinct_items <= 64,
                "{} uses {} items",
                k.name(),
                s.distinct_items
            );
            assert!(
                s.length >= 100,
                "{} trace too short: {}",
                k.name(),
                s.length
            );
        }
    }

    #[test]
    fn traces_are_normalized_and_labeled() {
        for k in Kernel::suite() {
            let t = k.trace();
            assert_eq!(t.label(), k.name());
            // Dense ids: num_items equals distinct count.
            assert_eq!(t.num_items(), t.stats().distinct_items, "{}", k.name());
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        for k in Kernel::suite() {
            assert_eq!(k.trace(), k.trace(), "{}", k.name());
        }
    }

    #[test]
    fn matmul_item_count_is_three_tile_grids() {
        let t = Kernel::MatMul { n: 8, block: 2 }.trace();
        assert_eq!(t.stats().distinct_items, 3 * 16);
    }

    #[test]
    fn fft_touches_every_point() {
        let t = Kernel::Fft { n: 32, block: 1 }.trace();
        assert_eq!(t.stats().distinct_items, 32);
        // (n/2)·log2(n) butterflies, 4 accesses each, plus bit-reversal.
        assert!(t.len() >= (32 / 2) * 5 * 4);
    }

    #[test]
    #[should_panic(expected = "block must divide n")]
    fn matmul_rejects_non_dividing_block() {
        let _ = Kernel::MatMul { n: 8, block: 3 }.trace();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = Kernel::Fft { n: 12, block: 1 }.trace();
    }

    #[test]
    fn insertion_sort_really_sorts() {
        // The kernel sorts internally; verify by re-running the logic.
        let mut rng = Rng::seed_from_u64(3);
        let mut keys: Vec<u32> = (0..20).map(|_| rng.gen()).collect();
        keys.sort_unstable();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // And the trace is produced without panicking.
        let t = Kernel::InsertionSort { n: 20, seed: 3 }.trace();
        assert!(t.len() > 20);
    }

    #[test]
    fn histogram_is_write_heavy_and_skewed() {
        let t = Kernel::Histogram {
            bins: 32,
            samples: 400,
            seed: 1,
        }
        .trace();
        let s = t.stats();
        assert_eq!(s.reads, s.writes);
        assert!(s.hot20_share > 0.5);
    }

    #[test]
    fn bfs_visits_every_node() {
        let t = Kernel::Bfs {
            nodes: 48,
            degree: 3,
            seed: 1,
        }
        .trace();
        assert_eq!(t.stats().distinct_items, 48);
    }

    #[test]
    fn extended_suite_fits_a_64_word_dbc() {
        for k in Kernel::extended_suite() {
            let t = k.trace();
            let s = t.stats();
            assert!(
                s.distinct_items <= 64,
                "{} uses {} items",
                k.name(),
                s.distinct_items
            );
            assert!(
                s.length >= 100,
                "{} trace too short: {}",
                k.name(),
                s.length
            );
            assert_eq!(t.label(), k.name());
            assert_eq!(k.trace(), t, "{} not deterministic", k.name());
        }
    }

    #[test]
    fn conv2d_touches_image_kernel_and_output() {
        let t = Kernel::Conv2d {
            rows: 6,
            cols: 6,
            k: 3,
            block: 1,
        }
        .trace();
        let s = t.stats();
        // Interior outputs: 4×4 = 16 writes.
        assert_eq!(s.writes, 16);
        // 36 image + 9 kernel cells touched, 16 outputs.
        assert_eq!(s.distinct_items, 36 + 9 + 16);
    }

    #[test]
    #[should_panic(expected = "kernel must be odd")]
    fn conv2d_rejects_even_kernel() {
        let _ = Kernel::Conv2d {
            rows: 6,
            cols: 6,
            k: 2,
            block: 1,
        }
        .trace();
    }

    #[test]
    fn kmeans_reads_all_centroids_per_point() {
        let t = Kernel::KMeans {
            points: 8,
            clusters: 4,
            block: 1,
            seed: 1,
        }
        .trace();
        let s = t.stats();
        // Assignment: 8 point reads + 8·4 centroid reads; update: 8
        // point reads + 8 centroid writes + 4 final writes.
        assert_eq!(s.reads, 8 + 32 + 8);
        assert_eq!(s.writes, 8 + 4);
    }

    #[test]
    fn dijkstra_settles_every_node() {
        let t = Kernel::Dijkstra {
            nodes: 28,
            degree: 3,
            seed: 1,
        }
        .trace();
        // All 28 node records are read (graph is ring-connected).
        assert!(t.stats().distinct_items >= 28);
        assert!(
            t.stats().writes >= 28,
            "each node's dist written at least once"
        );
    }

    #[test]
    fn spmv_writes_one_y_entry_per_row() {
        let t = Kernel::Spmv {
            n: 24,
            nnz_per_row: 4,
            block: 2,
            seed: 1,
        }
        .trace();
        assert_eq!(t.stats().writes, 24);
        assert_eq!(t.stats().reads, 24 + 24 * 4);
    }

    #[test]
    fn string_match_scans_whole_text() {
        let t = Kernel::StringMatch {
            text_len: 32,
            pattern_len: 4,
            block: 1,
            seed: 1,
        }
        .trace();
        // Every window start issues at least one text+pattern read.
        assert!(t.stats().length >= 2 * (32 - 4 + 1));
        assert!(t.stats().writes == 0, "search is read-only");
    }

    #[test]
    fn stencil_reads_neighbours() {
        let t = Kernel::Stencil2d {
            rows: 4,
            cols: 4,
            block: 1,
        }
        .trace();
        // 16 inputs + 16 outputs.
        assert_eq!(t.stats().distinct_items, 32);
        // Interior cells read 5 inputs; border fewer. 16 writes total.
        assert_eq!(t.stats().writes, 16);
    }
}
