use dwm_graph::AccessGraph;

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Local-search refinement: repeated first-improvement passes of
/// *windowed* position swaps until a pass yields no improvement (or
/// the pass budget is exhausted).
///
/// Each pass tries swapping the items at offsets `k` and `k + d` for
/// every `k` and every `d ≤ window`. Adjacent swaps (`window = 1`)
/// converge fast but get trapped in shallow minima on structured
/// graphs (grids, butterflies); a modest window escapes most of them
/// while keeping a pass at `O(n · window · d̄)`.
///
/// `LocalSearch` is both a standalone refiner ([`LocalSearch::refine`])
/// and composable: call [`refine`](LocalSearch::refine) on any
/// algorithm's output, which is what the experiment harness's "+LS"
/// variants and the [`Hybrid`](crate::algorithms::Hybrid) pipeline do.
///
/// Refinement never increases cost (each accepted move strictly
/// decreases it), an invariant the property tests enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearch {
    /// Maximum number of full passes.
    pub max_passes: usize,
    /// Maximum distance between swapped positions.
    pub window: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            max_passes: 50,
            window: 12,
        }
    }
}

impl LocalSearch {
    /// A refiner with the given pass budget and the default window.
    pub fn new(max_passes: usize) -> Self {
        LocalSearch {
            max_passes,
            ..LocalSearch::default()
        }
    }

    /// Sets the swap window (1 = adjacent swaps only).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Cost change of swapping the items at offsets `k` and `j`.
    fn position_swap_delta(graph: &AccessGraph, placement: &Placement, k: usize, j: usize) -> i64 {
        let a = placement.item_at(k);
        let b = placement.item_at(j);
        let (pa, pb) = (k as i64, j as i64);
        let mut delta = 0i64;
        for (v, w) in graph.neighbors(a) {
            if v == b {
                continue; // the (a,b) edge length is unchanged by a swap
            }
            let pv = placement.offset_of(v) as i64;
            delta += w as i64 * ((pb - pv).abs() - (pa - pv).abs());
        }
        for (v, w) in graph.neighbors(b) {
            if v == a {
                continue;
            }
            let pv = placement.offset_of(v) as i64;
            delta += w as i64 * ((pa - pv).abs() - (pb - pv).abs());
        }
        delta
    }

    /// Refines `placement` in place; returns the total cost reduction
    /// achieved (non-negative).
    pub fn refine(&self, graph: &AccessGraph, placement: &mut Placement) -> u64 {
        let n = placement.num_items();
        if n < 2 {
            return 0;
        }
        let mut saved = 0i64;
        for _ in 0..self.max_passes {
            let mut improved = false;
            for k in 0..n - 1 {
                for j in (k + 1)..(k + 1 + self.window).min(n) {
                    let delta = Self::position_swap_delta(graph, placement, k, j);
                    if delta < 0 {
                        let a = placement.item_at(k);
                        let b = placement.item_at(j);
                        placement.swap_items(a, b);
                        saved -= delta;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        saved as u64
    }

    /// Convenience: place with `base`, then refine.
    pub fn refine_placement_of(
        &self,
        base: &dyn PlacementAlgorithm,
        graph: &AccessGraph,
    ) -> Placement {
        let mut p = base.place(graph);
        self.refine(graph, &mut p);
        p
    }
}

impl PlacementAlgorithm for LocalSearch {
    fn name(&self) -> String {
        "local-search".into()
    }

    /// As a standalone algorithm, refines the identity placement.
    fn place(&self, graph: &AccessGraph) -> Placement {
        let mut p = Placement::identity(graph.num_items());
        self.refine(graph, &mut p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};
    use crate::algorithms::{ChainGrowth, OrganPipe, RandomPlacement};

    #[test]
    fn refine_never_increases_cost() {
        let g = kernel_graph();
        for base in [
            &RandomPlacement::new(5) as &dyn PlacementAlgorithm,
            &ChainGrowth,
            &OrganPipe,
        ] {
            let mut p = base.place(&g);
            let before = g.arrangement_cost(p.offsets());
            let saved = LocalSearch::default().refine(&g, &mut p);
            let after = g.arrangement_cost(p.offsets());
            assert!(after <= before, "{} got worse", base.name());
            assert_eq!(before - after, saved, "reported saving mismatch");
        }
    }

    #[test]
    fn position_swap_delta_matches_recomputation() {
        let g = two_cluster_graph();
        let mut p = RandomPlacement::new(11).place(&g);
        let n = p.num_items();
        for k in 0..n {
            for j in (k + 1)..n {
                let before = g.arrangement_cost(p.offsets()) as i64;
                let delta = LocalSearch::position_swap_delta(&g, &p, k, j);
                let (a, b) = (p.item_at(k), p.item_at(j));
                p.swap_items(a, b);
                let after = g.arrangement_cost(p.offsets()) as i64;
                assert_eq!(after - before, delta);
                p.swap_items(a, b);
            }
        }
    }

    #[test]
    fn converges_to_local_optimum() {
        let g = kernel_graph();
        let mut p = RandomPlacement::new(3).place(&g);
        LocalSearch::default().refine(&g, &mut p);
        // No in-window swap may improve further.
        let n = p.num_items();
        for k in 0..n - 1 {
            for j in (k + 1)..(k + 1 + LocalSearch::default().window).min(n) {
                assert!(LocalSearch::position_swap_delta(&g, &p, k, j) >= 0);
            }
        }
    }

    #[test]
    fn refine_placement_of_composes() {
        let g = kernel_graph();
        let base = ChainGrowth;
        let refined = LocalSearch::default().refine_placement_of(&base, &g);
        assert!(
            g.arrangement_cost(refined.offsets()) <= g.arrangement_cost(base.place(&g).offsets())
        );
    }

    #[test]
    fn handles_trivial_graphs() {
        for n in 0..2 {
            let g = AccessGraph::with_items(n);
            let mut p = Placement::identity(n);
            assert_eq!(LocalSearch::default().refine(&g, &mut p), 0);
        }
    }
}
