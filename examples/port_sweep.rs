//! Explore the access-port count tradeoff.
//!
//! More ports mean shorter shifts but more padding domains (lower
//! storage efficiency). This example sweeps 1–8 ports on a Zipf
//! workload and prints shifts/access, padding overhead, and the
//! efficiency-adjusted figure a designer actually trades off.
//!
//! ```text
//! cargo run --release --example port_sweep
//! ```

use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let l = 64;
    let trace = ZipfGen::new(l, 7).generate(20_000).normalize();
    let graph = AccessGraph::from_trace(&trace);
    let placement = Hybrid::default().place(&graph);

    println!("Zipf workload, {l}-word DBC, hybrid placement\n");
    println!(
        "{:>6} {:>14} {:>16} {:>12}",
        "ports", "shifts/access", "padding domains", "efficiency"
    );
    for ports in [1usize, 2, 4, 8] {
        let config = DeviceConfig::builder()
            .domains_per_track(l)
            .ports(ports)
            .build()?;
        let model = MultiPortCost::new(config.port_layout().clone());
        let stats = model.trace_cost(&placement, &trace).stats;
        println!(
            "{:>6} {:>14.2} {:>16} {:>11.1}%",
            ports,
            stats.mean_shift(),
            config.overhead_domains(),
            config.storage_efficiency() * 100.0
        );
    }
    Ok(())
}
