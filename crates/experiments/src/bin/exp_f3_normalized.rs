//! Experiment F3: normalized shift count per benchmark (bar-chart
//! data). Every algorithm's shifts are divided by the naive placement's
//! shifts; 1.000 = naive, lower is better. The "gmean" row is the
//! geometric mean across benchmarks — the headline reduction figure.

use dwm_core::cost::{CostModel, SinglePortCost};
use dwm_experiments::{algorithm_suite, workload_suite, Table};
use dwm_graph::AccessGraph;

fn main() {
    println!("Figure 3: shifts normalized to the naive placement (lower is better)\n");
    let algorithms = algorithm_suite();
    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(algorithms.iter().map(|a| a.name()));
    let mut t = Table::new(header);

    let model = SinglePortCost::new();
    let mut log_sums = vec![0.0f64; algorithms.len()];
    let workloads = workload_suite();
    for (name, trace) in &workloads {
        let graph = AccessGraph::from_trace(trace);
        let naive = model
            .trace_cost(&algorithms[0].place(&graph), trace)
            .stats
            .shifts;
        let mut cells = vec![name.clone()];
        for (i, alg) in algorithms.iter().enumerate() {
            let shifts = model.trace_cost(&alg.place(&graph), trace).stats.shifts;
            let ratio = shifts as f64 / naive.max(1) as f64;
            log_sums[i] += ratio.ln();
            cells.push(format!("{ratio:.3}"));
        }
        t.row(cells);
    }
    let mut gmean = vec!["gmean".to_string()];
    for s in &log_sums {
        gmean.push(format!("{:.3}", (s / workloads.len() as f64).exp()));
    }
    t.row(gmean);
    t.print();
}
