//! Guard test: the workspace must stay hermetic.
//!
//! Every dependency in every `Cargo.toml` must be an in-tree path
//! crate (either `path = "…"` directly or `workspace = true` resolving
//! to a path entry in the root manifest). A registry dependency would
//! break offline builds — `CARGO_NET_OFFLINE=1 cargo build` from a
//! clean checkout with an empty registry cache is a supported
//! configuration — so this test fails the moment one sneaks in.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Section headers whose entries are dependency declarations.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn manifest_paths() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut paths = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for dir in entries {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            paths.push(manifest);
        }
    }
    paths
}

/// `true` when the section header (the part between `[` and `]`)
/// declares dependencies. Also matches target-specific tables such as
/// `target.'cfg(unix)'.dependencies`.
fn is_dep_section(header: &str) -> bool {
    DEP_SECTIONS
        .iter()
        .any(|s| header == *s || header.ends_with(&format!(".{s}")))
}

/// `true` when the declaration pins the dependency to an in-tree path.
fn is_path_dep(key: &str, value: &str) -> bool {
    if key.ends_with(".workspace") || value.contains("workspace = true") {
        return true;
    }
    value.contains("path = \"")
}

#[test]
fn every_dependency_is_an_in_tree_path_crate() {
    let mut violations = String::new();
    let mut manifests = 0usize;
    let mut deps = 0usize;
    for manifest in manifest_paths() {
        manifests += 1;
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                let header = line.trim_matches(|c| c == '[' || c == ']');
                in_dep_section = is_dep_section(header);
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            deps += 1;
            if !is_path_dep(key.trim(), value.trim()) {
                writeln!(
                    violations,
                    "  {}:{}: `{}` is not a path dependency",
                    manifest.display(),
                    lineno + 1,
                    line
                )
                .unwrap();
            }
        }
    }
    assert!(
        manifests >= 12,
        "expected the root manifest plus every workspace crate, saw {manifests}"
    );
    assert!(
        deps > 0,
        "the scan found no dependency declarations at all — parser broken?"
    );
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (every dependency must be an \
         in-tree path crate):\n{violations}"
    );
}
