use dwm_graph::AccessGraph;

use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Greedy best-position insertion (classic MinLA construction).
///
/// Items are considered in descending weighted-degree order; each item
/// is inserted into the *position* of the partial order that minimizes
/// the partial arrangement cost, shifting later items right. Unlike
/// [`ChainGrowth`](crate::ChainGrowth), which commits to heavy edges
/// pairwise, insertion evaluates each item against the whole prefix, so
/// it handles high-degree "hub" vertices (grids, stars) better at
/// `O(n² · d̄)` cost.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::path_graph;
/// use dwm_core::{GreedyInsertion, PlacementAlgorithm};
///
/// let g = path_graph(12, 2);
/// let p = GreedyInsertion::default().place(&g);
/// // A path's optimal arrangement cost is (n-1)·w = 22.
/// assert_eq!(g.arrangement_cost(p.offsets()), 22);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GreedyInsertion;

impl GreedyInsertion {
    /// Partial arrangement cost of `order` (edges with both endpoints
    /// placed).
    fn partial_cost(graph: &AccessGraph, order: &[usize], pos: &[usize]) -> u64 {
        let mut cost = 0u64;
        for &u in order {
            for (v, w) in graph.neighbors(u) {
                if v < u || pos[v] == usize::MAX {
                    continue; // count each placed edge once (u < v)
                }
                if pos[u] != usize::MAX {
                    cost += w * (pos[u] as i64).abs_diff(pos[v] as i64);
                }
            }
        }
        cost
    }
}

impl PlacementAlgorithm for GreedyInsertion {
    fn name(&self) -> String {
        "insertion".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let n = graph.num_items();
        if n == 0 {
            return Placement::identity(0);
        }
        let mut items: Vec<usize> = (0..n).collect();
        items.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));

        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut pos = vec![usize::MAX; n];
        for v in items {
            // Try every insertion slot; keep the cheapest.
            let mut best_slot = 0usize;
            let mut best_cost = u64::MAX;
            for slot in 0..=order.len() {
                order.insert(slot, v);
                for (p, &u) in order.iter().enumerate() {
                    pos[u] = p;
                }
                pos[v] = slot;
                let cost = Self::partial_cost(graph, &order, &pos);
                if cost < best_cost {
                    best_cost = cost;
                    best_slot = slot;
                }
                order.remove(slot);
            }
            order.insert(best_slot, v);
            for (p, &u) in order.iter().enumerate() {
                pos[u] = p;
            }
        }
        Placement::from_order(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{interleaved_cluster_graph, kernel_graph};
    use dwm_graph::generators::{path_graph, random_graph};

    #[test]
    fn recovers_path_order() {
        let g = path_graph(10, 3);
        let p = GreedyInsertion.place(&g);
        assert_eq!(g.arrangement_cost(p.offsets()), 9 * 3);
    }

    #[test]
    fn valid_permutation_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(18, 0.4, 5, seed);
            let p = GreedyInsertion.place(&g);
            let mut seen = [false; 18];
            for off in 0..18 {
                assert!(!seen[p.item_at(off)]);
                seen[p.item_at(off)] = true;
            }
        }
    }

    #[test]
    fn groups_interleaved_clusters() {
        let g = interleaved_cluster_graph();
        let naive = g.arrangement_cost(Placement::identity(6).offsets());
        let ins = g.arrangement_cost(GreedyInsertion.place(&g).offsets());
        assert!(ins < naive);
    }

    #[test]
    fn deterministic() {
        let g = kernel_graph();
        assert_eq!(GreedyInsertion.place(&g), GreedyInsertion.place(&g));
    }

    #[test]
    fn handles_trivial_graphs() {
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(0))
                .num_items(),
            0
        );
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(1))
                .num_items(),
            1
        );
        assert_eq!(
            GreedyInsertion
                .place(&AccessGraph::with_items(5))
                .num_items(),
            5
        );
    }
}
