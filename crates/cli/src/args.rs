//! Minimal, dependency-free argument parsing for `dwmplace`.
//!
//! Grammar: `dwmplace <command> [positional...] [--flag value | --switch]`.
//! Every command's options are validated by the command itself; this
//! module only tokenizes and provides typed lookups.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

/// Parsed command line: command word, positional args, and options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The first non-flag token (the subcommand).
    pub command: String,
    /// Positional arguments after the command.
    pub positional: Vec<String>,
    /// `--key value` and bare `--switch` (value `"true"`) options.
    options: HashMap<String, String>,
}

impl ParsedArgs {
    /// Known boolean switches: these never consume a following token,
    /// so `--csv trace.txt` keeps `trace.txt` positional.
    const SWITCHES: &'static [&'static str] = &["csv", "quiet", "verbose", "obs", "no-upgrades"];

    /// Parses a token stream (exclusive of the program name).
    ///
    /// Flags may appear anywhere after the command. A flag followed by
    /// another flag (or nothing), or named in the known-switch list, is
    /// treated as a boolean switch.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if no command is present or a flag
    /// token is malformed (`--` alone).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseArgsError> {
        let tokens: Vec<String> = args.into_iter().collect();
        let mut parsed = ParsedArgs::default();
        let mut i = 0usize;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ParseArgsError("empty flag '--'".into()));
                }
                let takes_value = !Self::SWITCHES.contains(&name)
                    && i + 1 < tokens.len()
                    && !tokens[i + 1].starts_with("--");
                if takes_value {
                    parsed
                        .options
                        .insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    parsed.options.insert(name.to_string(), "true".into());
                    i += 1;
                }
            } else {
                if parsed.command.is_empty() {
                    parsed.command = tok.clone();
                } else {
                    parsed.positional.push(tok.clone());
                }
                i += 1;
            }
        }
        if parsed.command.is_empty() {
            return Err(ParseArgsError("missing command".into()));
        }
        Ok(parsed)
    }

    /// String option, or `default` if absent.
    pub fn opt_str(&self, name: &str, default: &str) -> String {
        self.options
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Optional string option.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] if present but not parseable.
    pub fn opt_num<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Boolean switch (present at all, or `--flag true/false`).
    pub fn switch(&self, name: &str) -> bool {
        matches!(
            self.options.get(name).map(String::as_str),
            Some("true") | Some("")
        )
    }

    /// The n-th positional argument.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] naming `what` when missing.
    pub fn positional(&self, n: usize, what: &str) -> Result<&str, ParseArgsError> {
        self.positional
            .get(n)
            .map(String::as_str)
            .ok_or_else(|| ParseArgsError(format!("missing argument: {what}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn command_and_positionals() {
        let p = parse("place trace.txt extra");
        assert_eq!(p.command, "place");
        assert_eq!(p.positional, vec!["trace.txt", "extra"]);
        assert_eq!(p.positional(0, "trace").unwrap(), "trace.txt");
        assert!(p.positional(5, "missing").is_err());
    }

    #[test]
    fn flags_with_values_and_switches() {
        let p = parse("gen --kind zipf --items 64 --csv");
        assert_eq!(p.opt_str("kind", "uniform"), "zipf");
        assert_eq!(p.opt_num("items", 0usize).unwrap(), 64);
        assert!(p.switch("csv"));
        assert!(!p.switch("quiet"));
        assert_eq!(p.opt_num("len", 100usize).unwrap(), 100);
    }

    #[test]
    fn bad_number_is_an_error() {
        let p = parse("gen --items banana");
        assert!(p.opt_num("items", 0usize).is_err());
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(ParsedArgs::parse(Vec::new()).is_err());
        assert!(ParsedArgs::parse(vec!["--flag".to_string()]).is_err());
    }

    #[test]
    fn empty_flag_is_an_error() {
        assert!(ParsedArgs::parse(vec!["cmd".into(), "--".into()]).is_err());
    }

    #[test]
    fn no_upgrades_is_a_switch_not_a_value_flag() {
        let p = parse("serve --no-upgrades --workers 2");
        assert!(p.switch("no-upgrades"));
        assert_eq!(p.opt_num("workers", 0usize).unwrap(), 2);
    }

    #[test]
    fn flag_before_positional_still_works() {
        let p = parse("stats --csv trace.txt");
        assert_eq!(p.command, "stats");
        assert!(p.switch("csv"));
        assert_eq!(p.positional(0, "trace").unwrap(), "trace.txt");
    }
}
