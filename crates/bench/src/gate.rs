//! The benchmark regression gate: compares a fresh benchmark run
//! against the checked-in baseline (`results/bench_baseline.json`) and
//! reports any benchmark whose **minimum** iteration time slowed down
//! beyond a threshold.
//!
//! Minima, not medians: on a small shared machine, scheduler noise
//! swings medians by tens of percent run-to-run, while the best-case
//! sample — which still pays all per-iteration work — stays within a
//! few percent. A real regression (more work per iteration) raises the
//! minimum just as surely as the median; only regressions that
//! manifest purely as occasional latency spikes would hide, and these
//! CPU-bound microbenches have none.
//!
//! The comparison logic lives here (rather than in the
//! [`bench_compare`](../../src/bin/bench_compare.rs) binary) so the
//! threshold semantics are unit-testable against fixture JSON —
//! `scripts/bench_gate.sh` is then a thin wrapper.
//!
//! Baseline format: `{"entries": [{"id": "...", "median_ns": ...,
//! "min_ns": ..., "p99_ns": ...}]}` with ids of the form
//! `<suite>/<bench id>` (the median and p99 ride along for human
//! diffing; `min_ns` falls back to the median in old files, `p99_ns`
//! to the p95 and then the median). Re-baseline with
//! `scripts/bench_gate.sh --rebaseline` after intentional performance
//! changes (and commit the result).
//!
//! Tail latency is gated differently from throughput: instead of
//! comparing p99 against a baseline (machine drift swings tails far
//! more than minima), [`p99_tail_checks`] bounds the *same-run* ratio
//! `p99 / median` for every benchmark under a prefix. A lost wakeup,
//! a lock convoy, or an accept storm in the serve path shows up as a
//! p99 several orders of magnitude over the median; honest scheduler
//! noise does not.

use dwm_foundation::json::{parse, Number, Object, Value};

/// One benchmark result, keyed by `<suite>/<bench id>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Suite-qualified benchmark id.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration (falls back to the median
    /// when the report predates the field). The pair gate compares
    /// minima: they filter scheduler noise that swings medians by
    /// ±10%, while real per-iteration overhead still shows up.
    pub min_ns: f64,
    /// 99th-percentile nanoseconds per iteration (falls back to the
    /// p95, then the median, when the report predates the field).
    /// Gated by the same-run tail bound ([`p99_tail_checks`]), never
    /// against the baseline — tails drift with the machine.
    pub p99_ns: f64,
}

/// A baseline/current pair for one benchmark id.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Suite-qualified benchmark id.
    pub id: String,
    /// Minimum iteration time in the baseline.
    pub baseline_ns: f64,
    /// Minimum iteration time in the current run.
    pub current_ns: f64,
}

impl Comparison {
    /// `current / baseline` — 1.0 is unchanged, 2.0 is twice as slow.
    pub fn ratio(&self) -> f64 {
        if self.baseline_ns <= 0.0 {
            1.0
        } else {
            self.current_ns / self.baseline_ns
        }
    }

    /// Whether the current minimum exceeds the baseline by more than
    /// `threshold` (0.25 = fail when >25% slower).
    pub fn regressed(&self, threshold: f64) -> bool {
        self.ratio() > 1.0 + threshold
    }
}

/// Outcome of matching a current run against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateReport {
    /// Ids present in both, with their minimum iteration times.
    pub comparisons: Vec<Comparison>,
    /// Baseline ids absent from the current run (renamed or filtered
    /// benchmarks — re-baseline to silence).
    pub missing: Vec<String>,
    /// Current ids absent from the baseline (new benchmarks —
    /// re-baseline to start tracking them).
    pub added: Vec<String>,
}

impl GateReport {
    /// The comparisons that regressed beyond `threshold`.
    pub fn regressions(&self, threshold: f64) -> Vec<&Comparison> {
        self.comparisons
            .iter()
            .filter(|c| c.regressed(threshold))
            .collect()
    }
}

fn entry_list(value: &Value, key: &str, id_prefix: &str) -> Result<Vec<Entry>, String> {
    let obj = value
        .as_object()
        .ok_or_else(|| format!("expected a JSON object with '{key}'"))?;
    let items = obj
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?;
    items
        .iter()
        .map(|item| {
            let o = item.as_object().ok_or("entry is not an object")?;
            let id = o
                .get("id")
                .and_then(Value::as_str)
                .ok_or("entry without string 'id'")?;
            let median_ns = o
                .get("median_ns")
                .and_then(Value::as_number)
                .ok_or("entry without numeric 'median_ns'")?
                .as_f64();
            let min_ns = o
                .get("min_ns")
                .and_then(Value::as_number)
                .map(Number::as_f64)
                .unwrap_or(median_ns);
            let p99_ns = o
                .get("p99_ns")
                .or_else(|| o.get("p95_ns"))
                .and_then(Value::as_number)
                .map(Number::as_f64)
                .unwrap_or(median_ns);
            Ok(Entry {
                id: format!("{id_prefix}{id}"),
                median_ns,
                min_ns,
                p99_ns,
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(str::to_owned)
}

/// Parses one suite report as written by
/// [`Harness::finish`](dwm_foundation::bench::Harness::finish),
/// qualifying each id with the suite name.
///
/// # Errors
///
/// Returns a description of the first structural problem (not JSON, no
/// `suite`/`results`, malformed result entries).
pub fn parse_suite_report(text: &str) -> Result<Vec<Entry>, String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    let suite = value
        .as_object()
        .and_then(|o| o.get("suite"))
        .and_then(Value::as_str)
        .ok_or("report without string 'suite'")?
        .to_owned();
    entry_list(&value, "results", &format!("{suite}/"))
}

/// Parses a baseline file (`{"entries": [...]}`).
///
/// # Errors
///
/// Returns a description of the first structural problem.
pub fn parse_baseline(text: &str) -> Result<Vec<Entry>, String> {
    let value = parse(text).map_err(|e| e.to_string())?;
    entry_list(&value, "entries", "")
}

/// Serializes entries as a baseline file (pretty JSON, trailing
/// newline, ids sorted so diffs are stable). All three statistics are
/// written: the gate compares `min_ns`; `median_ns` and `p99_ns` ride
/// along so a human diffing a re-baseline sees the typical cost and
/// the tail too.
pub fn baseline_json(entries: &[Entry]) -> String {
    let mut sorted: Vec<&Entry> = entries.iter().collect();
    sorted.sort_by(|a, b| a.id.cmp(&b.id));
    let items: Vec<Value> = sorted
        .into_iter()
        .map(|e| {
            let mut o = Object::new();
            o.insert("id", Value::Str(e.id.clone()));
            o.insert("median_ns", Value::Num(Number::F(e.median_ns)));
            o.insert("min_ns", Value::Num(Number::F(e.min_ns)));
            o.insert("p99_ns", Value::Num(Number::F(e.p99_ns)));
            Value::Obj(o)
        })
        .collect();
    let mut root = Object::new();
    root.insert("entries", Value::Arr(items));
    let mut text = Value::Obj(root).to_pretty();
    text.push('\n');
    text
}

/// Compares two benchmarks *within the same run*: `num / den` of
/// their **minimum** iteration times. Unlike the baseline gate, a
/// pair ratio is immune to machine drift — both sides ran on the same
/// box seconds apart — so it can hold a much tighter bound (e.g.
/// "observability on costs < 5% over observability off"). Minima are
/// compared rather than medians because scheduler noise swings
/// medians by ±10% while leaving the best-case iteration (which still
/// contains all per-iteration overhead) stable.
///
/// # Errors
///
/// Returns which id is missing when either side is absent from the
/// run, or when the denominator's minimum is not positive.
pub fn pair_ratio(current: &[Entry], num_id: &str, den_id: &str) -> Result<f64, String> {
    let min = |id: &str| {
        current
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.min_ns)
            .ok_or_else(|| format!("pair benchmark '{id}' missing from current run"))
    };
    let num = min(num_id)?;
    let den = min(den_id)?;
    if den <= 0.0 {
        return Err(format!(
            "pair benchmark '{den_id}' has non-positive minimum"
        ));
    }
    Ok(num / den)
}

/// One same-run tail-amplification measurement: how far a benchmark's
/// 99th-percentile iteration time sits above its own median.
#[derive(Debug, Clone, PartialEq)]
pub struct TailCheck {
    /// Suite-qualified benchmark id.
    pub id: String,
    /// Median iteration time in the current run.
    pub median_ns: f64,
    /// 99th-percentile iteration time in the current run.
    pub p99_ns: f64,
}

impl TailCheck {
    /// `p99 / median` — 1.0 is a perfectly flat distribution. A
    /// non-positive median reads as 1.0 (mirroring
    /// [`Comparison::ratio`]'s zero policy).
    pub fn ratio(&self) -> f64 {
        if self.median_ns <= 0.0 {
            1.0
        } else {
            self.p99_ns / self.median_ns
        }
    }

    /// Whether the tail exceeds `factor` times the median (strictly —
    /// exactly at the bound passes, matching the baseline gate).
    pub fn exceeded(&self, factor: f64) -> bool {
        self.ratio() > factor
    }
}

/// Collects the same-run `p99 / median` tail checks for every
/// benchmark whose id starts with `prefix` (e.g. `"serve/"`). Tails
/// are bounded within one run rather than against the baseline
/// because machine drift swings a p99 by integer factors while the
/// p99/median *shape* of a healthy benchmark stays put; an event-loop
/// pathology (lost wakeup, convoy) inflates the ratio by orders of
/// magnitude.
///
/// # Errors
///
/// Returns an error when no current id matches `prefix` — a tail gate
/// that silently matches nothing would pass forever.
pub fn p99_tail_checks(current: &[Entry], prefix: &str) -> Result<Vec<TailCheck>, String> {
    let checks: Vec<TailCheck> = current
        .iter()
        .filter(|e| e.id.starts_with(prefix))
        .map(|e| TailCheck {
            id: e.id.clone(),
            median_ns: e.median_ns,
            p99_ns: e.p99_ns,
        })
        .collect();
    if checks.is_empty() {
        return Err(format!(
            "no benchmark id under prefix '{prefix}' in the current run"
        ));
    }
    Ok(checks)
}

/// Matches `current` against `baseline` by id, comparing minimum
/// iteration times (see the module docs for why not medians).
pub fn compare(baseline: &[Entry], current: &[Entry]) -> GateReport {
    let mut report = GateReport::default();
    for b in baseline {
        match current.iter().find(|c| c.id == b.id) {
            Some(c) => report.comparisons.push(Comparison {
                id: b.id.clone(),
                baseline_ns: b.min_ns,
                current_ns: c.min_ns,
            }),
            None => report.missing.push(b.id.clone()),
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            report.added.push(c.id.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, f64)]) -> Vec<Entry> {
        pairs
            .iter()
            .map(|&(id, median_ns)| Entry {
                id: id.into(),
                median_ns,
                min_ns: median_ns,
                p99_ns: median_ns,
            })
            .collect()
    }

    #[test]
    fn suite_report_is_parsed_with_qualified_ids() {
        // Shape produced by Harness::to_json (extra fields ignored).
        let text = r#"{
            "suite": "sweep",
            "results": [
                {"id": "replay/16", "iters_per_sample": 4, "samples": 3,
                 "min_ns": 9.0, "median_ns": 10.0, "p95_ns": 12.0,
                 "p99_ns": 14.0, "mean_ns": 10.5},
                {"id": "replay/32", "median_ns": 20.0, "p95_ns": 25.0},
                {"id": "replay/64", "median_ns": 40.0}
            ]
        }"#;
        let entries = parse_suite_report(text).unwrap();
        assert_eq!(
            entries,
            vec![
                Entry {
                    id: "sweep/replay/16".into(),
                    median_ns: 10.0,
                    min_ns: 9.0,
                    p99_ns: 14.0
                },
                Entry {
                    id: "sweep/replay/32".into(),
                    median_ns: 20.0,
                    // No p99_ns (pre-field report): falls back to p95.
                    min_ns: 20.0,
                    p99_ns: 25.0
                },
                Entry {
                    id: "sweep/replay/64".into(),
                    median_ns: 40.0,
                    // No min_ns/p95_ns either: everything falls back
                    // to the median.
                    min_ns: 40.0,
                    p99_ns: 40.0
                },
            ]
        );
    }

    #[test]
    fn malformed_reports_are_rejected_with_reasons() {
        assert!(parse_suite_report("nonsense").is_err());
        assert!(parse_suite_report(r#"{"results": []}"#)
            .unwrap_err()
            .contains("suite"));
        assert!(parse_suite_report(r#"{"suite": "s"}"#)
            .unwrap_err()
            .contains("results"));
        assert!(
            parse_suite_report(r#"{"suite": "s", "results": [{"id": "x"}]}"#)
                .unwrap_err()
                .contains("median_ns")
        );
    }

    #[test]
    fn baseline_round_trips_sorted() {
        let text = baseline_json(&entries(&[("b/2", 2.0), ("a/1", 1.5)]));
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back, entries(&[("a/1", 1.5), ("b/2", 2.0)]));
    }

    #[test]
    fn threshold_is_strictly_greater_than() {
        let c = Comparison {
            id: "x".into(),
            baseline_ns: 100.0,
            current_ns: 125.0,
        };
        // Exactly 25% slower is NOT a regression at threshold 0.25 —
        // the gate fails only strictly beyond it.
        assert!(!c.regressed(0.25));
        let c = Comparison {
            current_ns: 125.1,
            ..c
        };
        assert!(c.regressed(0.25));
        // Speedups never trip the gate.
        let c = Comparison {
            current_ns: 10.0,
            ..c
        };
        assert!(!c.regressed(0.0));
    }

    #[test]
    fn compare_classifies_matched_missing_and_added() {
        let baseline = entries(&[("s/a", 100.0), ("s/gone", 50.0)]);
        let current = entries(&[("s/a", 90.0), ("s/new", 5.0)]);
        let report = compare(&baseline, &current);
        assert_eq!(
            report.comparisons,
            vec![Comparison {
                id: "s/a".into(),
                baseline_ns: 100.0,
                current_ns: 90.0
            }]
        );
        assert_eq!(report.missing, vec!["s/gone".to_string()]);
        assert_eq!(report.added, vec!["s/new".to_string()]);
        assert!(report.regressions(0.25).is_empty());
    }

    #[test]
    fn regressions_filter_by_threshold_from_fixture_json() {
        let baseline = parse_baseline(
            r#"{"entries": [
                {"id": "s/fast", "median_ns": 100.0},
                {"id": "s/slow", "median_ns": 100.0},
                {"id": "s/awful", "median_ns": 100.0}
            ]}"#,
        )
        .unwrap();
        let current = entries(&[("s/fast", 80.0), ("s/slow", 130.0), ("s/awful", 300.0)]);
        let report = compare(&baseline, &current);
        let ids = |th: f64| -> Vec<&str> {
            report
                .regressions(th)
                .iter()
                .map(|c| c.id.as_str())
                .collect()
        };
        assert_eq!(ids(0.25), vec!["s/slow", "s/awful"]);
        assert_eq!(ids(0.5), vec!["s/awful"]);
        assert_eq!(ids(3.0), Vec::<&str>::new());
    }

    #[test]
    fn compare_uses_minima_not_medians() {
        let baseline = vec![Entry {
            id: "s/x".into(),
            median_ns: 500.0,
            min_ns: 100.0,
            p99_ns: 500.0,
        }];
        // Median doubled (machine noise) but the minimum held: the
        // gate must read this as a 10% change, not 2x.
        let current = vec![Entry {
            id: "s/x".into(),
            median_ns: 1000.0,
            min_ns: 110.0,
            p99_ns: 1000.0,
        }];
        let report = compare(&baseline, &current);
        assert!((report.comparisons[0].ratio() - 1.1).abs() < 1e-12);
        assert!(report.regressions(0.25).is_empty());
    }

    #[test]
    fn pair_ratio_divides_minima_within_one_run() {
        let current = vec![
            Entry {
                id: "s/on".into(),
                median_ns: 120.0, // noisy median would read 1.20x…
                min_ns: 104.0,
                p99_ns: 120.0,
            },
            Entry {
                id: "s/off".into(),
                median_ns: 100.0,
                min_ns: 100.0,
                p99_ns: 100.0,
            },
        ];
        // …but the pair compares minima: 1.04x.
        let ratio = pair_ratio(&current, "s/on", "s/off").unwrap();
        assert!((ratio - 1.04).abs() < 1e-12);
        // A missing side names the missing id; a zero denominator is
        // rejected rather than producing infinity.
        assert!(pair_ratio(&current, "s/on", "s/gone")
            .unwrap_err()
            .contains("s/gone"));
        assert!(pair_ratio(&current, "s/gone", "s/off")
            .unwrap_err()
            .contains("s/gone"));
        let degenerate = entries(&[("s/on", 104.0), ("s/off", 0.0)]);
        assert!(pair_ratio(&degenerate, "s/on", "s/off").is_err());
    }

    #[test]
    fn tail_checks_cover_exactly_the_prefix() {
        let current = vec![
            Entry {
                id: "serve/serve/solve_hit".into(),
                median_ns: 100.0,
                min_ns: 90.0,
                p99_ns: 500.0,
            },
            Entry {
                id: "serve/serve/health".into(),
                median_ns: 10.0,
                min_ns: 9.0,
                p99_ns: 12.0,
            },
            Entry {
                id: "graph/build".into(),
                median_ns: 1.0,
                min_ns: 1.0,
                p99_ns: 1e9, // outside the prefix: never checked
            },
        ];
        let checks = p99_tail_checks(&current, "serve/").unwrap();
        assert_eq!(checks.len(), 2);
        assert!((checks[0].ratio() - 5.0).abs() < 1e-12);
        // Exactly at the bound passes; strictly beyond fails.
        assert!(!checks[0].exceeded(5.0));
        assert!(checks[0].exceeded(4.9));
        assert!(!checks[1].exceeded(5.0));
        // An empty prefix match is an error, not a silent pass.
        assert!(p99_tail_checks(&current, "nope/")
            .unwrap_err()
            .contains("nope/"));
    }

    #[test]
    fn tail_ratio_survives_degenerate_medians() {
        let t = TailCheck {
            id: "z".into(),
            median_ns: 0.0,
            p99_ns: 50.0,
        };
        assert_eq!(t.ratio(), 1.0);
        assert!(!t.exceeded(1.5));
    }

    #[test]
    fn zero_baseline_never_divides() {
        let c = Comparison {
            id: "z".into(),
            baseline_ns: 0.0,
            current_ns: 50.0,
        };
        assert_eq!(c.ratio(), 1.0);
        assert!(!c.regressed(0.25));
    }
}
