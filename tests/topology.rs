//! Topology laws and the linear golden pin.
//!
//! The `TrackTopology` refactor routed every shift-cost consumer
//! through one geometry model (`dwm_device::topology`). Two kinds of
//! contract keep it honest:
//!
//! * **Geometry laws** — relations that hold by construction and must
//!   keep holding: the ring metric is symmetric and never exceeds the
//!   linear metric (wraparound only adds a second direction), and a
//!   one-row grid degenerates byte-for-byte to the linear tape.
//! * **The linear golden pin** — `Topology::linear()` must reproduce
//!   the pre-topology shift distances and simulator reports exactly.
//!   Each artifact is hashed FNV-1a style (as in
//!   `tests/csr_equivalence.rs`) and required to be byte-identical at
//!   `DWM_THREADS=1` and `=8`. The artifacts are computed through the
//!   *legacy* models (`SinglePortCost` / `MultiPortCost` / the
//!   bit-level simulator) and asserted equal to the topology path
//!   first, so the pinned hashes are the pre-refactor values by
//!   construction.
//!
//! Regenerating (only after an *intentional* model change): run with
//! `DWM_GOLDEN_PRINT=1` and paste the printed table.

use std::sync::Mutex;

use dwm_placement::core::cost::CostModel;
use dwm_placement::prelude::*;
use dwm_placement::trace::kernels::Kernel;
use dwm_placement::trace::Trace;

/// `DWM_THREADS` is process-global; tests that flip it must not
/// interleave (mirrors `tests/parallel.rs`).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    std::env::set_var("DWM_THREADS", threads.to_string());
    let result = f();
    std::env::remove_var("DWM_THREADS");
    result
}

/// FNV-1a, 64-bit: stable across platforms and Rust versions.
fn fnv64(text: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn kernels() -> Vec<(&'static str, Trace)> {
    vec![
        ("fft", Kernel::Fft { n: 32, block: 1 }.trace()),
        ("matmul", Kernel::MatMul { n: 8, block: 2 }.trace()),
        ("isort", Kernel::InsertionSort { n: 24, seed: 9 }.trace()),
    ]
}

fn topo(spec: &str) -> Topology {
    Topology::parse(spec).expect("valid spec")
}

// ---------------------------------------------------------------- laws

#[test]
fn ring_metric_is_symmetric_and_never_exceeds_linear() {
    let ring = topo("ring");
    let linear = Topology::linear();
    let single = PortLayout::single();
    for len in [2usize, 5, 16, 64] {
        for a in 0..len {
            for b in 0..len {
                let d = ring.shift_distance(&single, len, a, b);
                assert_eq!(
                    d,
                    ring.shift_distance(&single, len, b, a),
                    "ring metric must be symmetric (len={len} a={a} b={b})"
                );
                assert!(
                    d <= linear.shift_distance(&single, len, a, b),
                    "wraparound can only shorten a move (len={len} a={a} b={b})"
                );
            }
        }
    }
}

#[test]
fn ring_replay_never_costs_more_than_linear_on_any_kernel() {
    // The per-pair law lifts to whole traces: same placement, same
    // single-port layout, ring total ≤ linear total.
    for (name, trace) in kernels() {
        let graph = AccessGraph::from_trace(&trace);
        let placement = Hybrid::default().place(&graph);
        let n = graph.num_items();
        let linear = TopologyCost::single_port(Topology::linear(), n)
            .trace_cost(&placement, &trace)
            .stats;
        let ring = TopologyCost::single_port(topo("ring"), n)
            .trace_cost(&placement, &trace)
            .stats;
        assert!(
            ring.shifts <= linear.shifts,
            "{name}: ring {} > linear {}",
            ring.shifts,
            linear.shifts
        );
        assert_eq!(ring.accesses(), linear.accesses());
    }
}

#[test]
fn one_row_grid_is_byte_identical_to_linear() {
    // With a single row the transverse term is identically zero and
    // the grid must degenerate to the linear tape — same stats, not
    // merely the same total.
    for (name, trace) in kernels() {
        let graph = AccessGraph::from_trace(&trace);
        let placement = Hybrid::default().place(&graph);
        let n = graph.num_items();
        for ports in [1usize, 2, 4] {
            let layout = PortLayout::evenly_spaced(ports, n);
            let grid = TopologyCost::new(topo(&format!("grid2d:1x{n}")), layout.clone(), n)
                .trace_cost(&placement, &trace)
                .stats;
            let linear = TopologyCost::new(Topology::linear(), layout, n)
                .trace_cost(&placement, &trace)
                .stats;
            assert_eq!(grid, linear, "{name} at {ports} port(s)");
        }
    }
}

// ---------------------------------------------------- linear golden pin

/// One artifact string per (kernel, replay path). Every string is
/// produced by the *legacy* model and asserted byte-equal to the
/// topology path before it is hashed.
fn linear_artifacts() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (name, trace) in kernels() {
        let graph = AccessGraph::from_trace(&trace);
        let placement = Hybrid::default().place(&graph);
        let n = graph.num_items();

        // Analytic single-port: legacy SinglePortCost vs the topology
        // model the serve/CLI layers now use.
        let single_legacy = SinglePortCost::new().trace_cost(&placement, &trace).stats;
        let single = TopologyCost::single_port(Topology::linear(), n)
            .trace_cost(&placement, &trace)
            .stats;
        assert_eq!(single_legacy, single, "{name}: linear single-port drifted");
        out.push((
            format!("{name}/single-port"),
            dwm_foundation::json::to_string(&single),
        ));

        // Analytic multi-port (nearest-port policy over 2 ports).
        let layout = PortLayout::evenly_spaced(2, n);
        let multi_legacy = MultiPortCost::new(layout.clone())
            .trace_cost(&placement, &trace)
            .stats;
        let multi = TopologyCost::new(Topology::linear(), layout, n)
            .trace_cost(&placement, &trace)
            .stats;
        assert_eq!(multi_legacy, multi, "{name}: linear multi-port drifted");
        out.push((
            format!("{name}/multi-port"),
            dwm_foundation::json::to_string(&multi),
        ));

        // Bit-level simulator report (device layer consumes the same
        // topology plans).
        let config = DeviceConfig::builder()
            .domains_per_track(n)
            .tracks_per_dbc(32)
            .build()
            .expect("valid config");
        let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
        let report = sim.run(&trace).expect("replay");
        assert_eq!(report.integrity_errors, 0, "{name}: integrity");
        assert_eq!(
            report.stats.shifts, single.shifts,
            "{name}: simulator disagrees with the analytic linear model"
        );
        out.push((
            format!("{name}/sim"),
            format!(
                "{} integrity={}",
                dwm_foundation::json::to_string(&report.stats),
                report.integrity_errors
            ),
        ));
    }
    out
}

/// Golden hashes of the pre-topology linear replay (see module docs:
/// captured through the legacy cost models, which predate the
/// `TrackTopology` refactor unchanged).
const GOLDEN: &[(&str, u64)] = &[
    ("fft/single-port", 0xd9fdaf61df598afa),
    ("fft/multi-port", 0x2ef70ed358d41c5b),
    ("fft/sim", 0x5e20e01a2190d100),
    ("matmul/single-port", 0xba1024039f78b638),
    ("matmul/multi-port", 0x43e477683a83c867),
    ("matmul/sim", 0x7288f500cb85472a),
    ("isort/single-port", 0x9febd2ab2f23df67),
    ("isort/multi-port", 0x369bf0f2d18a9756),
    ("isort/sim", 0xe12848683bb9f919),
];

fn check_against_golden(label: &str) {
    let actual = linear_artifacts();
    if std::env::var("DWM_GOLDEN_PRINT").is_ok() {
        for (name, text) in &actual {
            println!("    (\"{name}\", 0x{:016x}),", fnv64(text));
        }
    }
    assert_eq!(actual.len(), GOLDEN.len(), "artifact roster drifted");
    for ((name, text), (gname, ghash)) in actual.iter().zip(GOLDEN) {
        assert_eq!(name, gname, "artifact roster order drifted");
        assert_eq!(
            fnv64(text),
            *ghash,
            "{label}: '{name}' diverged from the pre-topology linear replay \
             (rerun with DWM_GOLDEN_PRINT=1 only for intentional model changes)"
        );
    }
}

#[test]
fn linear_replay_matches_pre_topology_goldens_at_1_thread() {
    let _guard = ENV_LOCK.lock().unwrap();
    with_threads(1, || check_against_golden("DWM_THREADS=1"));
}

#[test]
fn linear_replay_matches_pre_topology_goldens_at_8_threads() {
    let _guard = ENV_LOCK.lock().unwrap();
    with_threads(8, || check_against_golden("DWM_THREADS=8"));
}
