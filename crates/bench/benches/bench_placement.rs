//! T3/F3: placement construction time per algorithm per kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dwm_bench::suite_fixture;
use dwm_core::algorithms::standard_suite;

fn placement_per_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    for (name, _, graph) in suite_fixture() {
        for alg in standard_suite(1) {
            // Annealing dominates wall clock; bench it separately in
            // bench_runtime at scale instead of per kernel.
            if alg.name() == "annealing" {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(alg.name(), &name), &graph, |b, g| {
                b.iter(|| alg.place(std::hint::black_box(g)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, placement_per_kernel);
criterion_main!(benches);
