use std::collections::HashMap;

use crate::access::Trace;

/// Summary statistics of a trace, as reported in the benchmark
/// characteristics table (experiment T2).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of accesses.
    pub length: usize,
    /// Number of distinct items touched.
    pub distinct_items: usize,
    /// Number of read accesses.
    pub reads: usize,
    /// Number of write accesses.
    pub writes: usize,
    /// Number of *transitions* between two different items (the edges
    /// of the access graph, with multiplicity).
    pub transitions: usize,
    /// Fraction of consecutive access pairs touching the same item.
    pub self_transition_rate: f64,
    /// Access-count skew: fraction of accesses going to the hottest 20%
    /// of items (1.0 = everything hot, 0.2 = perfectly uniform).
    pub hot20_share: f64,
    /// Mean absolute id distance between consecutive accesses — the
    /// shift cost of the *identity* placement per transition.
    pub mean_stride: f64,
}

dwm_foundation::json_struct!(TraceStats {
    length,
    distinct_items,
    reads,
    writes,
    transitions,
    self_transition_rate,
    hot20_share,
    mean_stride
});

impl TraceStats {
    /// Computes statistics for `trace`. Handles non-dense ids.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut freq: HashMap<u32, u64> = HashMap::new();
        let mut reads = 0usize;
        let mut writes = 0usize;
        for a in trace.iter() {
            *freq.entry(a.item.0).or_insert(0) += 1;
            if a.kind.is_write() {
                writes += 1;
            } else {
                reads += 1;
            }
        }
        let mut transitions = 0usize;
        let mut self_transitions = 0usize;
        let mut stride_sum = 0u64;
        for pair in trace.accesses().windows(2) {
            if pair[0].item == pair[1].item {
                self_transitions += 1;
            } else {
                transitions += 1;
            }
            stride_sum += (pair[0].item.0 as i64).abs_diff(pair[1].item.0 as i64);
        }
        let pairs = trace.len().saturating_sub(1);
        let mut counts: Vec<u64> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let hot_n = counts.len().max(1).div_ceil(5); // ceil(20%)
        let hot_sum: u64 = counts.iter().take(hot_n).sum();
        let total: u64 = counts.iter().sum();
        TraceStats {
            length: trace.len(),
            distinct_items: freq.len(),
            reads,
            writes,
            transitions,
            self_transition_rate: if pairs == 0 {
                0.0
            } else {
                self_transitions as f64 / pairs as f64
            },
            hot20_share: if total == 0 {
                0.0
            } else {
                hot_sum as f64 / total as f64
            },
            mean_stride: if pairs == 0 {
                0.0
            } else {
                stride_sum as f64 / pairs as f64
            },
        }
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} accesses over {} items ({} R / {} W), mean stride {:.2}, hot-20% share {:.0}%",
            self.length,
            self.distinct_items,
            self.reads,
            self.writes,
            self.mean_stride,
            self.hot20_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::access::{Access, Trace};

    #[test]
    fn counts_reads_writes_and_items() {
        let t = Trace::from_accesses([Access::read(0u32), Access::write(1u32), Access::read(0u32)]);
        let s = t.stats();
        assert_eq!(s.length, 3);
        assert_eq!(s.distinct_items, 2);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn transition_accounting() {
        let t = Trace::from_ids([0u32, 0, 1, 1, 2]);
        let s = t.stats();
        assert_eq!(s.transitions, 2);
        assert!((s.self_transition_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_trace_has_low_hot_share() {
        let t = Trace::from_ids((0u32..100).collect::<Vec<_>>());
        let s = t.stats();
        assert!((s.hot20_share - 0.2).abs() < 1e-9);
    }

    #[test]
    fn skewed_trace_has_high_hot_share() {
        let mut ids = vec![0u32; 80];
        ids.extend(1u32..21);
        let s = Trace::from_ids(ids).stats();
        assert!(s.hot20_share > 0.8);
    }

    #[test]
    fn mean_stride_of_sequential_is_one() {
        let t = Trace::from_ids(0u32..50);
        assert!((t.stats().mean_stride - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = Trace::new().stats();
        assert_eq!(s.length, 0);
        assert_eq!(s.distinct_items, 0);
        assert_eq!(s.mean_stride, 0.0);
        assert_eq!(s.self_transition_rate, 0.0);
    }
}
