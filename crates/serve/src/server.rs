//! The daemon: [`ServeConfig`], [`start`], and [`ServeHandle`].
//!
//! This is a thin binding of the transport-agnostic [`Engine`] onto
//! the [`net::Server`] bounded-queue TCP front end. Backpressure
//! semantics come from `net`: when the accept queue is full the server
//! answers `503` immediately rather than letting connections pile up;
//! on shutdown it stops accepting, drains queued connections, finishes
//! in-flight requests, and closes.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use dwm_foundation::net::{self, ServerStats};
use dwm_foundation::par;

use crate::engine::{Engine, EngineConfig};

/// Environment variable overriding the default listen address.
pub const ADDR_ENV: &str = "DWM_SERVE_ADDR";

/// Default listen address when neither the config nor [`ADDR_ENV`]
/// says otherwise.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (port 0 picks a free
    /// port — tests use this).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accept-queue depth; beyond this, connections get `503`.
    pub queue_capacity: usize,
    /// Solve-cache entry budget (0 disables memoization).
    pub cache_capacity: usize,
    /// Streaming-session budget (0 = unlimited); the least-recently-
    /// used session gives way when the budget is exhausted.
    pub session_capacity: usize,
    /// Idle time after which a session expires (zero = never).
    pub session_ttl: Duration,
    /// Whether `quality:"best"` solves enqueue background tier-2
    /// upgrades (`--no-upgrades` turns this off).
    pub upgrades: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_owned()),
            workers: par::num_threads(),
            queue_capacity: 128,
            cache_capacity: 1024,
            session_capacity: 64,
            session_ttl: Duration::from_secs(600),
            upgrades: true,
        }
    }
}

impl ServeConfig {
    /// A config listening on an OS-assigned loopback port — what tests
    /// and benches use to avoid clashing with a real daemon.
    pub fn ephemeral() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeConfig::default()
        }
    }
}

/// A running daemon: the transport handle plus its engine.
pub struct ServeHandle {
    server: net::ServerHandle,
    engine: Arc<Engine>,
}

impl ServeHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The engine, for inspecting cache/request counters in-process.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Transport counters (accepted/rejected/handled).
    pub fn stats(&self) -> &ServerStats {
        self.server.stats()
    }

    /// Begins a graceful shutdown: stop accepting, drain the queue,
    /// finish in-flight requests. Returns immediately; use
    /// [`join`](Self::join) to wait for completion.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Waits for every server thread to exit.
    pub fn join(self) {
        self.server.join();
    }
}

/// Starts the daemon described by `config`.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: ServeConfig) -> io::Result<ServeHandle> {
    let engine = Arc::new(Engine::with_config(EngineConfig {
        cache_capacity: config.cache_capacity,
        session_capacity: config.session_capacity,
        session_ttl: config.session_ttl,
        upgrades: config.upgrades,
    }));
    let handler_engine = Arc::clone(&engine);
    let server = net::Server::start(
        net::ServerConfig {
            addr: config.addr,
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
        },
        move |req| handler_engine.handle(req),
    )?;
    Ok(ServeHandle { server, engine })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConn;

    #[test]
    fn daemon_serves_health_over_loopback_and_drains_on_shutdown() {
        let handle = start(ServeConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let addr = handle.local_addr();

        let mut conn = ClientConn::connect(addr).unwrap();
        let resp = conn.get("/health").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body_str().unwrap(),
            r#"{"status":"ok","service":"dwm-serve"}"#
        );

        let solve = conn.post_json("/solve", r#"{"ids":[0,1,0,2,1]}"#).unwrap();
        assert_eq!(solve.status, 200);
        assert_eq!(handle.engine().cache().stats().entries, 1);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn ephemeral_config_binds_port_zero() {
        let cfg = ServeConfig::ephemeral();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        let handle = start(cfg).unwrap();
        assert_ne!(handle.local_addr().port(), 0);
        handle.shutdown();
        handle.join();
    }
}
