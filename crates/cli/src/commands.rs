//! The `dwmplace` subcommands.
//!
//! Each command is a pure function from parsed arguments to a text
//! report (plus optional file side effects), which keeps the whole CLI
//! unit-testable without spawning processes.
//!
//! Failures carry a [`CliError`] with a distinct process exit code per
//! failure class, so scripts can tell a typo from a missing file from a
//! corrupt one:
//!
//! | code | class                                            |
//! |------|--------------------------------------------------|
//! | 1    | internal/model error                             |
//! | 2    | usage: bad flags, unknown command/algorithm      |
//! | 3    | I/O: missing or unreadable file                  |
//! | 4    | malformed input: unparseable trace or JSON       |

use std::fmt;

use dwm_core::algorithms::{standard_suite, PlacementAlgorithm};
use dwm_core::cost::{CostModel, MultiPortCost, SinglePortCost, TopologyCost};
use dwm_core::online::{OnlineConfig, OnlinePlacer};
use dwm_core::spm::SpmAllocator;
use dwm_core::{GroupedChainGrowth, Hybrid, Placement};
use dwm_device::{DeviceConfig, PortLayout, Topology, TrackTopology};
use dwm_graph::AccessGraph;
use dwm_trace::analysis::ReuseProfile;
use dwm_trace::kernels::Kernel;
use dwm_trace::synth::{
    MarkovGen, ProfiledGen, SequentialGen, StridedGen, TraceGenerator, UniformGen, ZipfGen,
};
use dwm_trace::{io as trace_io, Trace, TraceProfile};

use crate::args::{ParseArgsError, ParsedArgs};

/// A command failure: user-facing message plus the process exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Process exit code (see the module table).
    pub code: u8,
    /// One-line message printed to stderr.
    pub message: String,
}

impl CliError {
    /// Exit code for usage errors (bad flags, unknown names).
    pub const USAGE: u8 = 2;
    /// Exit code for I/O errors (missing/unreadable files).
    pub const IO: u8 = 3;
    /// Exit code for malformed input files.
    pub const MALFORMED: u8 = 4;

    fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: Self::USAGE,
            message: message.into(),
        }
    }

    fn io(message: impl Into<String>) -> Self {
        CliError {
            code: Self::IO,
            message: message.into(),
        }
    }

    fn malformed(message: impl Into<String>) -> Self {
        CliError {
            code: Self::MALFORMED,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        CliError {
            code: 1,
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(e: ParseArgsError) -> Self {
        CliError::usage(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::io(e.to_string())
    }
}

impl From<dwm_foundation::json::JsonError> for CliError {
    fn from(e: dwm_foundation::json::JsonError) -> Self {
        CliError::malformed(e.to_string())
    }
}

impl From<dwm_trace::io::ParseTraceError> for CliError {
    fn from(e: dwm_trace::io::ParseTraceError) -> Self {
        CliError::malformed(e.to_string())
    }
}

impl From<dwm_core::PlacementError> for CliError {
    fn from(e: dwm_core::PlacementError) -> Self {
        CliError::internal(e.to_string())
    }
}

impl From<dwm_cache::CacheConfigError> for CliError {
    fn from(e: dwm_cache::CacheConfigError) -> Self {
        CliError::usage(e.to_string())
    }
}

type CommandResult = Result<String, CliError>;

/// Usage text printed by `dwmplace help` (and on errors).
pub const USAGE: &str = "\
dwmplace — data placement for domain-wall memories

USAGE: dwmplace <command> [args] [--flags]

COMMANDS:
  gen --kind <uniform|zipf|seq|stride|markov|kernel:NAME>
      [--items N] [--len N] [--seed N] [--out FILE]
                     generate a trace (text format to stdout or FILE)
  stats <trace>      trace statistics and reuse profile
  trace profile <trace> [--out FILE]
                     emit a compact versioned JSON workload profile
                     (kernel mix, reuse-distance histogram, phase
                     structure, Zipf skew)
  trace synth --profile FILE|- [--scale K] [--len N] [--seed N]
        [--out FILE]
                     stream a statistically matched synthetic trace
                     from a profile ('-' reads the profile from stdin;
                     generation is streaming, so 10^8-access instances
                     need --out, not a shell pipe buffer)
  hash <trace>       canonical 128-bit workload fingerprint (the
                     solve-cache key used by `serve`)
  place <trace> [--algorithm NAME] [--topology T] [--out FILE]
                     compute a placement; report shifts vs naive
  sweep <trace>      compare the full algorithm suite
  eval <trace> <placement.json> [--ports N] [--tape-length L]
       [--topology T]
                     evaluate a saved placement under a port layout
  device info [--topology T] [--domains N] [--tracks N] [--ports N]
       [--dbcs N]
                     resolved track topology, port layout, and cost
                     parameters as JSON. Topology grammar (everywhere
                     --topology is accepted): linear | ring |
                     grid2d:<rows>x<cols> | pirm[:<window>]
  spm <trace> [--dbcs K] [--words L]
                     multi-DBC scratchpad allocation comparison
  online <trace> [--window N] [--migration-cost N]
                     windowed adaptive placement report
  cache <trace> [--sets N] [--ways N] [--window N]
                     DWM cache policy comparison (LRU vs shift-aware)
  serve [start] [--addr HOST:PORT] [--workers N] [--queue N]
        [--cache-capacity N] [--session-capacity N] [--session-ttl SECS]
        [--no-upgrades] [--cluster N]
                     placement-as-a-service daemon (solve/evaluate/
                     simulate/stats/health/metrics over HTTP, plus
                     streaming /session endpoints with phase-triggered
                     re-placement; tiered solves take quality/
                     deadline_us knobs and quality:\"best\" enqueues
                     background tier-2 upgrades unless --no-upgrades;
                     GET /metrics is a Prometheus scrape; --cluster N
                     runs N engine shards behind a consistent-hash
                     front with disjoint solve-cache slices — see
                     docs/SERVING.md; DWM_SERVE_ADDR overrides the
                     default 127.0.0.1:7077; stops gracefully on
                     SIGINT/SIGTERM or POST /admin/drain)
  serve status [--addr HOST:PORT]
                     one /stats round-trip against a running daemon
  serve drain [--addr HOST:PORT]
                     ask a running daemon to drain and exit gracefully
  help               this text

GLOBAL FLAGS:
  --threads N        cap the parallel worker count (1 = sequential;
                     default: DWM_THREADS env var, then all cores).
                     Results are identical at any thread count.
  --obs              after the command finishes, dump the metric
                     registry as JSON to stderr (see
                     docs/OBSERVABILITY.md; DWM_OBS=0 disables solver
                     metric collection entirely).

EXIT CODES:
  0 success   1 internal error   2 usage   3 I/O   4 malformed input
";

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Propagates argument, I/O, and model errors with user-facing
/// messages and class-specific exit codes.
pub fn dispatch(args: &ParsedArgs) -> CommandResult {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "stats" => cmd_stats(args),
        "trace" => cmd_trace(args),
        "hash" => cmd_hash(args),
        "place" => cmd_place(args),
        "sweep" => cmd_sweep(args),
        "eval" => cmd_eval(args),
        "device" => cmd_device(args),
        "spm" => cmd_spm(args),
        "online" => cmd_online(args),
        "cache" => cmd_cache(args),
        "serve" => cmd_serve(args),
        "help" | "--help" => Ok(USAGE.to_string()),
        other => Err(CliError::usage(format!(
            "unknown command {other:?}; try 'dwmplace help'"
        ))),
    }
}

/// Loads the `n`-th positional argument as a text trace, mapping a
/// missing/unreadable file to exit code 3 and an unparseable one to 4,
/// both with the path in the message.
fn load_trace(args: &ParsedArgs, n: usize) -> Result<Trace, CliError> {
    let path = args.positional(n, "trace file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::io(format!("cannot read trace file {path:?}: {e}")))?;
    trace_io::from_text(&text).map_err(|e| CliError::malformed(format!("trace file {path:?}: {e}")))
}

fn cmd_gen(args: &ParsedArgs) -> CommandResult {
    let kind = args.opt_str("kind", "uniform");
    let items: usize = args.opt_num("items", 64)?;
    let len: usize = args.opt_num("len", 10_000)?;
    let seed: u64 = args.opt_num("seed", 1)?;
    let trace = if let Some(kernel_name) = kind.strip_prefix("kernel:") {
        Kernel::suite()
            .into_iter()
            .find(|k| k.name() == kernel_name)
            .ok_or_else(|| {
                CliError::usage(format!(
                    "unknown kernel {kernel_name:?}; choose from: {}",
                    Kernel::suite()
                        .iter()
                        .map(|k| k.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?
            .trace()
    } else {
        match kind.as_str() {
            "uniform" => UniformGen::new(items, seed).generate(len),
            "zipf" => ZipfGen::new(items, seed).generate(len),
            "seq" => SequentialGen::new(items).generate(len),
            "stride" => StridedGen::new(items, args.opt_num("stride", 3)?).generate(len),
            "markov" => MarkovGen::new(items, (items / 8).max(2), seed).generate(len),
            other => return Err(CliError::usage(format!("unknown generator kind {other:?}"))),
        }
    };
    let text = trace_io::to_text(&trace);
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::io(format!("cannot write {path:?}: {e}")))?;
            Ok(format!(
                "wrote {} accesses over {} items to {path}",
                trace.len(),
                trace.num_items()
            ))
        }
        None => Ok(text),
    }
}

fn cmd_stats(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?;
    let s = trace.stats();
    let reuse = ReuseProfile::compute(&trace);
    Ok(format!(
        "label:           {}\n\
         accesses:        {}\n\
         distinct items:  {}\n\
         reads / writes:  {} / {}\n\
         mean stride:     {:.2}\n\
         hot-20% share:   {:.0}%\n\
         self-transition: {:.0}%\n\
         mean reuse dist: {:.2}\n\
         cold accesses:   {}",
        if trace.label().is_empty() {
            "(none)"
        } else {
            trace.label()
        },
        s.length,
        s.distinct_items,
        s.reads,
        s.writes,
        s.mean_stride,
        s.hot20_share * 100.0,
        s.self_transition_rate * 100.0,
        reuse.mean_distance(),
        reuse.cold_accesses,
    ))
}

fn cmd_trace(args: &ParsedArgs) -> CommandResult {
    match args.positional(0, "trace subcommand ('profile' or 'synth')")? {
        "profile" => cmd_trace_profile(args),
        "synth" => cmd_trace_synth(args),
        other => Err(CliError::usage(format!(
            "unknown trace subcommand {other:?} (expected 'profile' or 'synth')"
        ))),
    }
}

fn cmd_trace_profile(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 1)?.normalize();
    let profile = TraceProfile::from_trace(&trace);
    let json = profile.to_json_pretty();
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| CliError::io(format!("cannot write {path:?}: {e}")))?;
            Ok(format!(
                "profiled {} accesses over {} items ({} phase(s)) to {path}",
                profile.length, profile.items, profile.phases
            ))
        }
        None => Ok(json),
    }
}

fn cmd_trace_synth(args: &ParsedArgs) -> CommandResult {
    let src = args
        .opt("profile")
        .ok_or_else(|| CliError::usage("--profile FILE is required ('-' reads stdin)"))?;
    let text = if src == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buf)
            .map_err(|e| CliError::io(format!("cannot read profile from stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(src)
            .map_err(|e| CliError::io(format!("cannot read profile file {src:?}: {e}")))?
    };
    let profile = TraceProfile::parse(&text)
        .map_err(|e| CliError::malformed(format!("profile {src:?}: {e}")))?;
    let scale: f64 = args.opt_num("scale", 1.0)?;
    if scale <= 0.0 || scale.is_nan() {
        return Err(CliError::usage("--scale must be positive"));
    }
    let len: u64 = match args.opt_num("len", 0u64)? {
        0 => (profile.length as f64 * scale).round() as u64,
        n => n,
    };
    let seed: u64 = args.opt_num("seed", 1)?;
    let generator = ProfiledGen::new(profile, seed);
    let items = generator.profile().items;
    // Stream access-by-access: the trace is never materialized, so
    // --scale can take the profile to 10^8+ accesses in O(items) memory.
    let write_stream = |w: &mut dyn std::io::Write| -> std::io::Result<()> {
        writeln!(w, "# label: {}", generator.name())?;
        for a in generator.stream(len) {
            let k = if a.kind.is_write() { 'w' } else { 'r' };
            writeln!(w, "{k} {}", a.item.0)?;
        }
        w.flush()
    };
    match args.opt("out") {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| CliError::io(format!("cannot write {path:?}: {e}")))?;
            let mut w = std::io::BufWriter::new(file);
            write_stream(&mut w)
                .map_err(|e| CliError::io(format!("cannot write {path:?}: {e}")))?;
            Ok(format!("wrote {len} accesses over {items} items to {path}"))
        }
        None => {
            let mut buf = Vec::new();
            write_stream(&mut buf).map_err(|e| CliError::io(e.to_string()))?;
            Ok(String::from_utf8(buf).expect("trace text is ASCII"))
        }
    }
}

fn cmd_hash(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let graph = AccessGraph::from_trace(&trace);
    let fp = dwm_graph::fingerprint(&graph);
    Ok(format!(
        "{fp} ({} items, {} edges)",
        graph.num_items(),
        graph.num_edges()
    ))
}

fn algorithm_by_name(name: &str) -> Result<Box<dyn PlacementAlgorithm>, CliError> {
    standard_suite(1)
        .into_iter()
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            CliError::usage(format!(
                "unknown algorithm {name:?}; choose from: {}",
                standard_suite(1)
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

fn cmd_place(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let algorithm = algorithm_by_name(&args.opt_str("algorithm", "hybrid"))?;
    let topology = topology_flag(args)?;
    let graph = AccessGraph::from_trace(&trace);
    topology
        .validate_for(graph.num_items())
        .map_err(CliError::usage)?;
    let placement = algorithm.place(&graph);
    // The linear single-port TopologyCost replays byte-identically to
    // the legacy SinglePortCost, so default invocations are unchanged.
    let model = TopologyCost::single_port(topology, graph.num_items());
    let naive = model
        .trace_cost(&Placement::identity(graph.num_items()), &trace)
        .stats
        .shifts;
    let tuned = model.trace_cost(&placement, &trace).stats.shifts;
    let label = if topology.is_linear() {
        algorithm.name()
    } else {
        format!("{} on {topology}", algorithm.name())
    };
    let mut out = format!(
        "{label}: {naive} -> {tuned} shifts ({:.1}% reduction)\ntape order: {:?}",
        100.0 * (naive as f64 - tuned as f64) / naive.max(1) as f64,
        placement.order(),
    );
    if let Some(path) = args.opt("out") {
        std::fs::write(path, dwm_foundation::json::to_string_pretty(&placement))
            .map_err(|e| CliError::io(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!("\nsaved placement to {path}"));
    }
    Ok(out)
}

fn cmd_sweep(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let csv = args.switch("csv");
    let graph = AccessGraph::from_trace(&trace);
    let model = SinglePortCost::new();
    let naive = model
        .trace_cost(&Placement::identity(graph.num_items()), &trace)
        .stats
        .shifts;
    let mut out = if csv {
        "algorithm,shifts,reduction_percent\n".to_string()
    } else {
        format!("{:<16} {:>10} {:>9}\n", "algorithm", "shifts", "vs naive")
    };
    for alg in standard_suite(args.opt_num("seed", 1)?) {
        let shifts = model.trace_cost(&alg.place(&graph), &trace).stats.shifts;
        let reduction = 100.0 * (naive as f64 - shifts as f64) / naive.max(1) as f64;
        if csv {
            out.push_str(&format!("{},{shifts},{reduction:.1}\n", alg.name()));
        } else {
            out.push_str(&format!(
                "{:<16} {:>10} {:>8.1}%\n",
                alg.name(),
                shifts,
                reduction
            ));
        }
    }
    Ok(out)
}

fn cmd_eval(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let placement_path = args.positional(1, "placement.json")?;
    let placement_text = std::fs::read_to_string(placement_path).map_err(|e| {
        CliError::io(format!(
            "cannot read placement file {placement_path:?}: {e}"
        ))
    })?;
    let placement: Placement = dwm_foundation::json::from_str(&placement_text)
        .map_err(|e| CliError::malformed(format!("placement file {placement_path:?}: {e}")))?;
    let ports: usize = args.opt_num("ports", 1)?;
    let tape_length: usize = args.opt_num("tape-length", placement.num_items().max(1))?;
    if ports == 0 || tape_length == 0 {
        return Err(CliError::usage(
            "--ports and --tape-length must be at least 1",
        ));
    }
    if trace.num_items() > placement.num_items() {
        return Err(CliError::usage(format!(
            "placement covers {} items but the trace touches {}",
            placement.num_items(),
            trace.num_items()
        )));
    }
    let topology = topology_flag(args)?;
    topology
        .validate_for(tape_length)
        .map_err(CliError::usage)?;
    // Linear keeps the legacy MultiPortCost (byte-identical report);
    // other geometries route through the topology cost model.
    let (name, report) = if topology.is_linear() {
        let model = MultiPortCost::evenly_spaced(ports, tape_length);
        (model.name(), model.trace_cost(&placement, &trace))
    } else {
        let model = TopologyCost::new(
            topology,
            PortLayout::evenly_spaced(ports, tape_length),
            tape_length,
        );
        (model.name(), model.trace_cost(&placement, &trace))
    };
    Ok(format!(
        "{} under {}: {}",
        trace.label(),
        name,
        report.stats
    ))
}

/// Parses the `--topology` flag (`linear` when absent); the grammar is
/// `linear | ring | grid2d:<rows>x<cols> | pirm[:<window>]`.
fn topology_flag(args: &ParsedArgs) -> Result<Topology, CliError> {
    Topology::parse(&args.opt_str("topology", "linear"))
        .map_err(|e| CliError::usage(format!("--topology: {e}")))
}

fn cmd_device(args: &ParsedArgs) -> CommandResult {
    match args.positional(0, "device subcommand ('info')")? {
        "info" => cmd_device_info(args),
        other => Err(CliError::usage(format!(
            "unknown device subcommand {other:?} (expected 'info')"
        ))),
    }
}

/// `device info`: the resolved track topology, port layout, and cost
/// parameters as one JSON object, so scripts and experiments can read
/// the exact model a `--topology`/geometry flag combination denotes.
fn cmd_device_info(args: &ParsedArgs) -> CommandResult {
    use dwm_foundation::json::{Number, Object, Value};
    let topology = topology_flag(args)?;
    let config = DeviceConfig::builder()
        .domains_per_track(args.opt_num("domains", 64)?)
        .tracks_per_dbc(args.opt_num("tracks", 32)?)
        .ports(args.opt_num("ports", 1)?)
        .dbcs(args.opt_num("dbcs", 1)?)
        .build()
        .map_err(|e| CliError::usage(format!("invalid device config: {e}")))?;
    topology
        .validate_for(config.words_per_dbc())
        .map_err(CliError::usage)?;

    let num = |f: f64| Value::Num(Number::F(f));
    let uint = |u: u64| Value::Num(Number::U(u));
    let mut topo = Object::new();
    topo.insert("kind", Value::Str(topology.kind().label().into()));
    topo.insert("canonical", Value::Str(topology.canonical()));
    topo.insert("shift_energy_weight", num(topology.shift_energy_weight()));
    topo.insert("wear_weight", num(topology.wear_weight()));
    let mut geometry = Object::new();
    geometry.insert("domains_per_track", uint(config.domains_per_track() as u64));
    geometry.insert("tracks_per_dbc", uint(config.tracks_per_dbc() as u64));
    geometry.insert("words_per_dbc", uint(config.words_per_dbc() as u64));
    geometry.insert("dbcs", uint(config.dbcs() as u64));
    geometry.insert("capacity_words", uint(config.capacity_words() as u64));
    geometry.insert("storage_efficiency", num(config.storage_efficiency()));
    let mut ports = Object::new();
    ports.insert("count", uint(config.port_layout().len() as u64));
    ports.insert(
        "positions",
        Value::Arr(
            config
                .port_layout()
                .positions()
                .iter()
                .map(|&p| uint(p as u64))
                .collect(),
        ),
    );
    let timing = config.timing();
    let mut t = Object::new();
    t.insert("shift_cycles", uint(timing.shift_cycles));
    t.insert("read_cycles", uint(timing.read_cycles));
    t.insert("write_cycles", uint(timing.write_cycles));
    t.insert("clock_ns", num(timing.clock_ns));
    let energy = config.energy();
    let mut e = Object::new();
    e.insert("shift_pj_per_track", num(energy.shift_pj_per_track));
    e.insert("read_pj", num(energy.read_pj));
    e.insert("write_pj", num(energy.write_pj));
    e.insert("leakage_mw", num(energy.leakage_mw));
    let mut body = Object::new();
    body.insert("topology", Value::Obj(topo));
    body.insert("geometry", Value::Obj(geometry));
    body.insert("ports", Value::Obj(ports));
    body.insert("timing", Value::Obj(t));
    body.insert("energy", Value::Obj(e));
    Ok(Value::Obj(body).to_pretty())
}

fn cmd_spm(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let dbcs: usize = args.opt_num("dbcs", 4)?;
    let words: usize = args.opt_num("words", 16)?;
    if dbcs == 0 || words == 0 {
        return Err(CliError::usage("--dbcs and --words must be at least 1"));
    }
    let alloc = SpmAllocator::new(dbcs, words);
    let ports = PortLayout::single();
    let rr = alloc.allocate_round_robin(trace.num_items())?;
    let smart = alloc.allocate(&trace, &GroupedChainGrowth)?;
    let (rr_stats, _) = rr.trace_cost(&trace, &ports);
    let (smart_stats, _) = smart.trace_cost(&trace, &ports);
    Ok(format!(
        "SPM {dbcs}x{words}: round-robin {} shifts, anti-affinity {} shifts ({:.1}% reduction)",
        rr_stats.shifts,
        smart_stats.shifts,
        100.0 * (rr_stats.shifts as f64 - smart_stats.shifts as f64)
            / rr_stats.shifts.max(1) as f64
    ))
}

fn cmd_online(args: &ParsedArgs) -> CommandResult {
    let trace = load_trace(args, 0)?.normalize();
    let window: usize = args.opt_num("window", 512)?;
    if window == 0 {
        return Err(CliError::usage("--window must be at least 1"));
    }
    let config = OnlineConfig {
        window,
        migration_shifts_per_item: args.opt_num("migration-cost", 64)?,
        ..OnlineConfig::default()
    };
    let report = OnlinePlacer::new(config).run(&trace);
    let naive = SinglePortCost::new()
        .trace_cost(&Placement::identity(trace.num_items()), &trace)
        .stats
        .shifts;
    let graph = AccessGraph::from_trace(&trace);
    let oracle = SinglePortCost::new()
        .trace_cost(&Hybrid::default().place(&graph), &trace)
        .stats
        .shifts;
    Ok(format!(
        "static-naive:  {naive} shifts\n\
         static-oracle: {oracle} shifts\n\
         online:        {} shifts ({} access + {} migration, {} adaptations)",
        report.total_shifts(),
        report.access_shifts,
        report.migration_shifts,
        report.migrations,
    ))
}

fn cmd_cache(args: &ParsedArgs) -> CommandResult {
    use dwm_cache::{CacheConfig, DwmCache, ReplacementPolicy};
    let trace = load_trace(args, 0)?;
    let sets: usize = args.opt_num("sets", 8)?;
    let ways: usize = args.opt_num("ways", 8)?;
    let window: usize = args.opt_num("window", 2)?;
    let lru = DwmCache::new(CacheConfig::new(sets, ways)?).run_trace(&trace);
    let aware = DwmCache::new(
        CacheConfig::new(sets, ways)?.with_replacement(ReplacementPolicy::ShiftAwareLru { window }),
    )
    .run_trace(&trace);
    Ok(format!(
        "cache {sets}x{ways}:\n\
         lru            {:.1}% hits, {:.2} shifts/access\n\
         shift-aware(w={window}) {:.1}% hits, {:.2} shifts/access ({:.1}% fewer shifts)",
        lru.hit_ratio() * 100.0,
        lru.shifts_per_access(),
        aware.hit_ratio() * 100.0,
        aware.shifts_per_access(),
        100.0 * (lru.shifts as f64 - aware.shifts as f64) / lru.shifts.max(1) as f64
    ))
}

/// Connects to the daemon named by `--addr`/`DWM_SERVE_ADDR`/the
/// default address, for the `serve status|drain` lifecycle verbs.
fn serve_connect(addr: &str) -> Result<dwm_serve::ClientConn, CliError> {
    use std::net::ToSocketAddrs;
    let resolved = addr
        .to_socket_addrs()
        .map_err(|e| CliError::usage(format!("bad daemon address {addr:?}: {e}")))?
        .next()
        .ok_or_else(|| CliError::usage(format!("daemon address {addr:?} resolves to nothing")))?;
    dwm_serve::ClientConn::connect(resolved)
        .map_err(|e| CliError::io(format!("cannot reach dwm-serve at {addr}: {e}")))
}

/// `serve status`: one `/stats` round-trip, body passed through.
fn cmd_serve_status(addr: &str) -> CommandResult {
    let mut conn = serve_connect(addr)?;
    let resp = conn
        .get("/stats")
        .map_err(|e| CliError::io(format!("stats request to {addr} failed: {e}")))?;
    let body = resp.body_str().unwrap_or("").trim_end();
    if resp.status != 200 {
        return Err(CliError::io(format!(
            "dwm-serve at {addr} answered {}: {body}",
            resp.status
        )));
    }
    Ok(body.to_owned())
}

/// `serve drain`: asks the daemon to begin a graceful shutdown.
fn cmd_serve_drain(addr: &str) -> CommandResult {
    let mut conn = serve_connect(addr)?;
    let resp = conn
        .post_json("/admin/drain", "{}")
        .map_err(|e| CliError::io(format!("drain request to {addr} failed: {e}")))?;
    let body = resp.body_str().unwrap_or("").trim_end();
    if resp.status != 200 {
        return Err(CliError::io(format!(
            "dwm-serve at {addr} answered {}: {body}",
            resp.status
        )));
    }
    Ok(format!("drain requested at {addr}: {body}"))
}

fn cmd_serve(args: &ParsedArgs) -> CommandResult {
    let mut config = dwm_serve::ServeConfig::default();
    if let Some(addr) = args.opt("addr") {
        config.addr = addr.to_owned();
    }
    // Lifecycle verb: bare `serve` keeps its historical run-the-daemon
    // meaning, spelled `serve start` going forward.
    match args.positional(0, "subcommand") {
        Err(_) | Ok("start") => {}
        Ok("status") => return cmd_serve_status(&config.addr),
        Ok("drain") => return cmd_serve_drain(&config.addr),
        Ok(other) => {
            return Err(CliError::usage(format!(
                "unknown serve subcommand {other:?}; try start, status, or drain"
            )))
        }
    }
    config.workers = args.opt_num("workers", config.workers)?;
    config.queue_capacity = args.opt_num("queue", config.queue_capacity)?;
    config.cache_capacity = args.opt_num("cache-capacity", config.cache_capacity)?;
    config.session_capacity = args.opt_num("session-capacity", config.session_capacity)?;
    config.cluster = args.opt_num("cluster", config.cluster)?;
    let ttl_secs: u64 = args.opt_num("session-ttl", config.session_ttl.as_secs())?;
    config.session_ttl = std::time::Duration::from_secs(ttl_secs);
    config.upgrades = !args.switch("no-upgrades");
    if config.workers == 0 || config.queue_capacity == 0 {
        return Err(CliError::usage("--workers and --queue must be at least 1"));
    }
    if config.cluster == 0 {
        return Err(CliError::usage("--cluster must be at least 1"));
    }

    dwm_serve::signal::install();
    let handle = dwm_serve::start(config.clone())
        .map_err(|e| CliError::io(format!("cannot listen on {}: {e}", config.addr)))?;
    // Printed eagerly (not returned) so operators see it before the
    // daemon blocks.
    println!(
        "dwm-serve listening on {} ({} workers, queue {}, solve cache {}, cluster {})",
        handle.local_addr(),
        config.workers,
        config.queue_capacity,
        config.cache_capacity,
        config.cluster
    );
    while !dwm_serve::signal::triggered() && !handle.drain_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.shutdown();
    let served = handle
        .stats()
        .requests
        .load(std::sync::atomic::Ordering::Relaxed);
    // The engine's request/cache metrics live in its private registry,
    // which dies with the handle — dump it here so a global --obs dump
    // (which only sees obs::global) still captures them.
    if args.switch("obs") {
        eprintln!(
            "{}",
            dwm_foundation::obs::dump_json(&[handle.engine().registry()]).to_pretty()
        );
    }
    handle.join();
    Ok(format!(
        "shutdown: drained in-flight work, {served} requests served"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> CommandResult {
        let args = ParsedArgs::parse(line.split_whitespace().map(String::from))
            .expect("parseable test command");
        dispatch(&args)
    }

    fn temp_trace() -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("dwmplace_test_{}.trace", std::process::id()));
        let trace = ZipfGen::new(32, 5).generate(2000);
        trace_io::save_text(&trace, &path).expect("temp file writable");
        path
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("sweep"));
        assert!(out.contains("serve"));
        assert!(out.contains("hash"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let err = run("frobnicate").unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
    }

    #[test]
    fn gen_produces_parseable_text() {
        let out = run("gen --kind zipf --items 16 --len 100 --seed 2").unwrap();
        let trace = trace_io::from_text(&out).unwrap();
        assert_eq!(trace.len(), 100);
        assert!(trace.num_items() <= 16);
    }

    #[test]
    fn gen_kernel_kind_works() {
        let out = run("gen --kind kernel:fft").unwrap();
        let trace = trace_io::from_text(&out).unwrap();
        assert_eq!(trace.label(), "fft");
    }

    #[test]
    fn gen_unknown_kind_is_a_usage_error() {
        assert_eq!(run("gen --kind nonsense").unwrap_err().code, 2);
        assert_eq!(run("gen --kind kernel:nonsense").unwrap_err().code, 2);
    }

    #[test]
    fn stats_reports_counts() {
        let path = temp_trace();
        let out = run(&format!("stats {}", path.display())).unwrap();
        assert!(out.contains("accesses:        2000"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hash_matches_the_library_fingerprint() {
        let path = temp_trace();
        let out = run(&format!("hash {}", path.display())).unwrap();
        let trace = trace_io::load_text(&path).unwrap().normalize();
        let expected = dwm_graph::fingerprint(&AccessGraph::from_trace(&trace));
        assert!(
            out.starts_with(&expected.to_hex()),
            "hash output {out:?} does not start with {expected}"
        );
        assert!(out.contains("items"));
        assert!(out.contains("edges"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_trace_file_is_an_io_error() {
        for cmd in [
            "stats",
            "hash",
            "place",
            "sweep",
            "online",
            "spm",
            "cache",
            "trace profile",
        ] {
            let err = run(&format!("{cmd} /no/such/file.trace")).unwrap_err();
            assert_eq!(err.code, CliError::IO, "{cmd}: {err}");
            assert!(err.message.contains("/no/such/file.trace"), "{cmd}: {err}");
        }
    }

    #[test]
    fn trace_profile_then_synth_round_trips() {
        let path = temp_trace();
        let profile_path =
            std::env::temp_dir().join(format!("dwmplace_test_{}.profile.json", std::process::id()));
        let out = run(&format!(
            "trace profile {} --out {}",
            path.display(),
            profile_path.display()
        ))
        .unwrap();
        assert!(out.contains("profiled 2000 accesses"), "{out}");
        let profile =
            TraceProfile::parse(&std::fs::read_to_string(&profile_path).unwrap()).unwrap();
        assert_eq!(profile.length, 2000);
        assert_eq!(profile.items, 32);

        // synth --scale 2 doubles the length and stays in-universe.
        let synth = run(&format!(
            "trace synth --profile {} --scale 2 --seed 7",
            profile_path.display()
        ))
        .unwrap();
        let trace = trace_io::from_text(&synth).unwrap();
        assert_eq!(trace.len(), 4000);
        assert!(trace.num_items() <= 32);
        assert!(trace.label().starts_with("profiled-32"));

        // --out streams to a file and reports instead of dumping.
        let out_path =
            std::env::temp_dir().join(format!("dwmplace_test_{}.synth.trace", std::process::id()));
        let msg = run(&format!(
            "trace synth --profile {} --len 500 --out {}",
            profile_path.display(),
            out_path.display()
        ))
        .unwrap();
        assert!(msg.contains("wrote 500 accesses"), "{msg}");
        assert_eq!(trace_io::load_text(&out_path).unwrap().len(), 500);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(profile_path).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn trace_profile_without_out_prints_versioned_json() {
        let path = temp_trace();
        let out = run(&format!("trace profile {}", path.display())).unwrap();
        assert!(out.contains("\"version\": 1"), "{out}");
        let profile = TraceProfile::parse(&out).unwrap();
        assert_eq!(profile.length, 2000);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_subcommand_misuse_is_a_usage_error() {
        assert_eq!(run("trace").unwrap_err().code, CliError::USAGE);
        assert_eq!(run("trace frobnicate").unwrap_err().code, CliError::USAGE);
        assert_eq!(run("trace synth").unwrap_err().code, CliError::USAGE);
        let path = temp_trace();
        let profile_path = std::env::temp_dir().join(format!(
            "dwmplace_usage_{}.profile.json",
            std::process::id()
        ));
        run(&format!(
            "trace profile {} --out {}",
            path.display(),
            profile_path.display()
        ))
        .unwrap();
        let err = run(&format!(
            "trace synth --profile {} --scale 0",
            profile_path.display()
        ))
        .unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(profile_path).ok();
    }

    #[test]
    fn trace_synth_rejects_bad_profiles() {
        assert_eq!(
            run("trace synth --profile /no/such/p.json")
                .unwrap_err()
                .code,
            CliError::IO
        );
        let path = std::env::temp_dir().join(format!("dwmplace_badp_{}.json", std::process::id()));
        std::fs::write(&path, "{ nope").unwrap();
        let err = run(&format!("trace synth --profile {}", path.display())).unwrap_err();
        assert_eq!(err.code, CliError::MALFORMED);
        std::fs::write(&path, "{\"version\": 99}").unwrap();
        let err = run(&format!("trace synth --profile {}", path.display())).unwrap_err();
        assert_eq!(err.code, CliError::MALFORMED);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_trace_file_is_a_malformed_input_error() {
        let path = std::env::temp_dir().join(format!("dwmplace_bad_{}.trace", std::process::id()));
        std::fs::write(&path, "r 1\nnot a trace line\n").unwrap();
        let err = run(&format!("stats {}", path.display())).unwrap_err();
        assert_eq!(err.code, CliError::MALFORMED);
        assert!(err.message.contains("line 2"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_placement_json_is_a_malformed_input_error() {
        let trace = temp_trace();
        let path = std::env::temp_dir().join(format!("dwmplace_bad_{}.json", std::process::id()));
        std::fs::write(&path, "{ definitely not json").unwrap();
        let err = run(&format!("eval {} {}", trace.display(), path.display())).unwrap_err();
        assert_eq!(err.code, CliError::MALFORMED);
        std::fs::remove_file(trace).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn zero_valued_knobs_are_usage_errors_not_panics() {
        let path = temp_trace();
        let online = run(&format!("online {} --window 0", path.display())).unwrap_err();
        assert_eq!(online.code, CliError::USAGE);
        let spm = run(&format!("spm {} --dbcs 0", path.display())).unwrap_err();
        assert_eq!(spm.code, CliError::USAGE);
        let cache = run(&format!("cache {} --sets 0", path.display())).unwrap_err();
        assert_eq!(cache.code, CliError::USAGE);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn place_reports_reduction_and_saves() {
        let path = temp_trace();
        let out_path = std::env::temp_dir().join(format!(
            "dwmplace_test_{}.placement.json",
            std::process::id()
        ));
        let out = run(&format!(
            "place {} --algorithm hybrid --out {}",
            path.display(),
            out_path.display()
        ))
        .unwrap();
        assert!(out.contains("shifts"));
        let placement: Placement =
            dwm_foundation::json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(placement.num_items(), 32);

        // eval round-trips the saved placement.
        let eval = run(&format!(
            "eval {} {} --ports 2 --tape-length 32",
            path.display(),
            out_path.display()
        ))
        .unwrap();
        assert!(eval.contains("2-port"));
        // eval with a zero port count is a usage error, not a panic.
        let zero = run(&format!(
            "eval {} {} --ports 0",
            path.display(),
            out_path.display()
        ))
        .unwrap_err();
        assert_eq!(zero.code, CliError::USAGE);
        std::fs::remove_file(path).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn sweep_lists_all_algorithms() {
        let path = temp_trace();
        let out = run(&format!("sweep {}", path.display())).unwrap();
        for name in ["naive", "hybrid", "organ-pipe", "annealing"] {
            assert!(out.contains(name), "missing {name} in sweep output");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn spm_and_online_commands_run() {
        let path = temp_trace();
        let spm = run(&format!("spm {} --dbcs 4 --words 8", path.display())).unwrap();
        assert!(spm.contains("round-robin"));
        let online = run(&format!("online {} --window 500", path.display())).unwrap();
        assert!(online.contains("online:"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cache_command_compares_policies() {
        let path = temp_trace();
        let out = run(&format!("cache {} --sets 4 --ways 4", path.display())).unwrap();
        assert!(out.contains("lru"));
        assert!(out.contains("shift-aware"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_csv_emits_machine_readable_rows() {
        let path = temp_trace();
        let out = run(&format!("sweep --csv {}", path.display())).unwrap();
        assert!(out.starts_with("algorithm,shifts,reduction_percent"));
        assert!(out.lines().count() >= 9);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn place_accepts_a_topology_and_rejects_garbage() {
        let path = temp_trace();
        let default = run(&format!("place {}", path.display())).unwrap();
        let linear = run(&format!("place {} --topology linear", path.display())).unwrap();
        assert_eq!(default, linear, "explicit linear must change nothing");
        let ring = run(&format!("place {} --topology ring", path.display())).unwrap();
        assert!(ring.contains("hybrid on ring:"), "{ring}");
        let bad = run(&format!("place {} --topology mobius", path.display())).unwrap_err();
        assert_eq!(bad.code, CliError::USAGE);
        // A grid too small for the item set is a usage error too.
        let small = run(&format!("place {} --topology grid2d:2x2", path.display())).unwrap_err();
        assert_eq!(small.code, CliError::USAGE);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eval_accepts_a_topology() {
        let path = temp_trace();
        let out_path = std::env::temp_dir().join(format!(
            "dwmplace_topo_{}.placement.json",
            std::process::id()
        ));
        run(&format!(
            "place {} --out {}",
            path.display(),
            out_path.display()
        ))
        .unwrap();
        let ring = run(&format!(
            "eval {} {} --ports 2 --tape-length 32 --topology ring",
            path.display(),
            out_path.display()
        ))
        .unwrap();
        assert!(ring.contains("ring@2-port"), "{ring}");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn device_info_prints_the_resolved_model_as_json() {
        let out = run("device info --topology grid2d:8x8 --ports 2").unwrap();
        let value = dwm_foundation::json::parse(&out).unwrap();
        let obj = value.as_object().unwrap();
        let topo = obj.get("topology").unwrap().as_object().unwrap();
        assert_eq!(topo.get("kind").unwrap().as_str(), Some("grid2d"));
        assert_eq!(topo.get("canonical").unwrap().as_str(), Some("grid2d:8x8"));
        let ports = obj.get("ports").unwrap().as_object().unwrap();
        assert_eq!(
            ports.get("count").unwrap().as_number().unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(ports.get("positions").unwrap().as_array().unwrap().len(), 2);
        assert!(obj.get("energy").is_some());
        assert!(obj.get("timing").is_some());
        // pirm carries its 1.5x transverse energy weight.
        let pirm = run("device info --topology pirm:4").unwrap();
        assert!(pirm.contains("1.5"), "{pirm}");
        // Misuse maps to the usage exit code.
        assert_eq!(run("device").unwrap_err().code, CliError::USAGE);
        assert_eq!(run("device frobnicate").unwrap_err().code, CliError::USAGE);
        assert_eq!(
            run("device info --topology mobius").unwrap_err().code,
            CliError::USAGE
        );
        // A grid smaller than the track is refused up front.
        assert_eq!(
            run("device info --topology grid2d:2x2").unwrap_err().code,
            CliError::USAGE
        );
    }

    #[test]
    fn unknown_algorithm_is_a_usage_error() {
        let path = temp_trace();
        let err = run(&format!("place {} --algorithm magic", path.display())).unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
        std::fs::remove_file(path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn serve_command_runs_until_sigterm() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        // Install the handler *before* spawning anything so the later
        // raise can never hit the default disposition.
        dwm_serve::signal::install();
        dwm_serve::signal::reset();
        let worker =
            std::thread::spawn(|| run("serve --addr 127.0.0.1:0 --workers 2 --cache-capacity 8"));
        std::thread::sleep(std::time::Duration::from_millis(300));
        // SAFETY: delivers SIGTERM to this process; the handler
        // installed above records it in an atomic flag.
        unsafe {
            raise(15);
        }
        let out = worker.join().unwrap().unwrap();
        assert!(out.contains("shutdown"), "{out}");
        dwm_serve::signal::reset();
    }

    #[test]
    fn serve_rejects_zero_workers() {
        let err = run("serve --workers 0").unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
    }

    #[test]
    fn serve_rejects_zero_cluster_and_unknown_subcommands() {
        let err = run("serve --cluster 0").unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
        let err = run("serve restart").unwrap_err();
        assert_eq!(err.code, CliError::USAGE);
        assert!(err.message.contains("restart"), "{}", err.message);
    }

    #[test]
    fn serve_status_and_drain_talk_to_a_running_daemon() {
        let handle = dwm_serve::start(dwm_serve::ServeConfig {
            cluster: 2,
            ..dwm_serve::ServeConfig::ephemeral()
        })
        .unwrap();
        let addr = handle.local_addr();
        let status = run(&format!("serve status --addr {addr}")).unwrap();
        assert!(status.contains("\"cluster\""), "{status}");
        assert!(!handle.drain_requested());
        let drained = run(&format!("serve drain --addr {addr}")).unwrap();
        assert!(drained.contains("draining"), "{drained}");
        assert!(handle.drain_requested());
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn serve_status_reports_unreachable_daemons_as_io_errors() {
        // A port from the ephemeral range that nothing in this test
        // process is listening on: bind-then-drop guarantees it was
        // free a moment ago.
        let free = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = free.local_addr().unwrap();
        drop(free);
        let err = run(&format!("serve status --addr {addr}")).unwrap_err();
        assert_eq!(err.code, CliError::IO);
    }
}
