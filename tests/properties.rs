//! Property-based tests over the core invariants.
//!
//! These check the invariants listed in `DESIGN.md` §7 on randomly
//! generated traces, graphs, and placements rather than hand-picked
//! cases, using the seeded [`Checker`] harness from `dwm-foundation`
//! (48 cases per property; crank `DWM_CHECK_CASES` for soak runs, or
//! replay one failure with `DWM_CHECK_SEED`).

use dwm_foundation::{require, require_eq, Checker, Rng};
use dwm_placement::core::algorithms::standard_suite;
use dwm_placement::core::exact::optimal_placement;
use dwm_placement::prelude::*;

/// Generator: a random trace over `1..=max_items` items.
fn arb_trace(rng: &mut Rng, max_items: usize, max_len: usize) -> Trace {
    let items = rng.gen_range(1..=max_items);
    let len = rng.gen_range(1..=max_len);
    Trace::from_accesses((0..len).map(|_| {
        let id = rng.gen_range(0..items as u32);
        if rng.gen_bool(0.5) {
            Access::write(id)
        } else {
            Access::read(id)
        }
    }))
    .normalize()
}

/// Generator: a random access graph over `1..=n` items.
fn arb_graph(rng: &mut Rng, n: usize) -> AccessGraph {
    AccessGraph::from_trace(&arb_trace(rng, n, 200))
}

/// Every algorithm always produces a bijection.
#[test]
fn placements_are_permutations() {
    Checker::new("placements_are_permutations").run(
        |rng| (arb_graph(rng, 24), rng.gen_range(0..1000u64)),
        |(graph, seed)| {
            for alg in standard_suite(*seed) {
                let p = alg.place(graph);
                require_eq!(p.num_items(), graph.num_items());
                let mut seen = vec![false; graph.num_items()];
                for off in 0..graph.num_items() {
                    let item = p.item_at(off);
                    require!(!seen[item], "{} duplicated item", alg.name());
                    seen[item] = true;
                    require_eq!(p.offset_of(item), off);
                }
            }
            Ok(())
        },
    );
}

/// Trace replay cost = arrangement cost + first-access alignment,
/// for any placement and any trace (single-port model).
#[test]
fn trace_cost_equals_graph_cost_plus_alignment() {
    Checker::new("trace_cost_equals_graph_cost_plus_alignment").run(
        |rng| (arb_trace(rng, 16, 300), rng.gen_range(0..100u64)),
        |(trace, seed)| {
            let graph = AccessGraph::from_trace(trace);
            let placement = RandomPlacement::new(*seed).place(&graph);
            let model = SinglePortCost::new();
            let replay = model.trace_cost(&placement, trace).stats.shifts;
            let arrangement = graph.arrangement_cost(placement.offsets());
            let first = trace.accesses()[0].item;
            let alignment = placement.offset_of_id(first) as u64;
            require_eq!(replay, arrangement + alignment);
            Ok(())
        },
    );
}

/// No heuristic ever beats the exact optimum (n ≤ 9 keeps the DP fast
/// under the property-case count).
#[test]
fn heuristics_respect_the_optimum() {
    Checker::new("heuristics_respect_the_optimum").run(
        |rng| (arb_graph(rng, 9), rng.gen_range(0..100u64)),
        |(graph, seed)| {
            let (_, opt) = optimal_placement(graph).expect("small instance");
            for alg in standard_suite(*seed) {
                let cost = graph.arrangement_cost(alg.place(graph).offsets());
                require!(
                    cost >= opt,
                    "{} cost {} below optimum {}",
                    alg.name(),
                    cost,
                    opt
                );
            }
            Ok(())
        },
    );
}

/// Local search never increases the arrangement cost, from any
/// starting placement.
#[test]
fn local_search_is_monotone() {
    Checker::new("local_search_is_monotone").run(
        |rng| (arb_graph(rng, 20), rng.gen_range(0..1000u64)),
        |(graph, seed)| {
            let mut p = RandomPlacement::new(*seed).place(graph);
            let before = graph.arrangement_cost(p.offsets());
            let saved = LocalSearch::default().refine(graph, &mut p);
            let after = graph.arrangement_cost(p.offsets());
            require!(after <= before);
            require_eq!(before - after, saved);
            Ok(())
        },
    );
}

/// The multi-port model with a single port at offset 0 agrees with
/// the single-port model on every trace and placement.
#[test]
fn single_port_models_agree() {
    Checker::new("single_port_models_agree").run(
        |rng| (arb_trace(rng, 16, 200), rng.gen_range(0..100u64)),
        |(trace, seed)| {
            let graph = AccessGraph::from_trace(trace);
            let p = RandomPlacement::new(*seed).place(&graph);
            let a = SinglePortCost::new().trace_cost(&p, trace).stats.shifts;
            let b = MultiPortCost::new(PortLayout::single())
                .trace_cost(&p, trace)
                .stats
                .shifts;
            require_eq!(a, b);
            Ok(())
        },
    );
}

/// Mirroring a placement never changes its arrangement cost (the cost
/// model is symmetric).
#[test]
fn mirror_preserves_cost() {
    Checker::new("mirror_preserves_cost").run(
        |rng| (arb_graph(rng, 16), rng.gen_range(0..100u64)),
        |(graph, seed)| {
            let mut p = RandomPlacement::new(*seed).place(graph);
            let before = graph.arrangement_cost(p.offsets());
            p.mirror();
            require_eq!(graph.arrangement_cost(p.offsets()), before);
            Ok(())
        },
    );
}

/// Text serialization round-trips every trace exactly.
#[test]
fn trace_text_round_trip() {
    use dwm_placement::trace::io;
    Checker::new("trace_text_round_trip").run(
        |rng| arb_trace(rng, 32, 300),
        |trace| {
            let text = io::to_text(trace);
            let back = io::from_text(&text).expect("own output parses");
            require_eq!(&back, trace);
            Ok(())
        },
    );
}

/// JSON serialization round-trips every trace exactly.
#[test]
fn trace_json_round_trip() {
    use dwm_placement::trace::io;
    Checker::new("trace_json_round_trip").run(
        |rng| arb_trace(rng, 32, 300),
        |trace| {
            let json = io::to_json(trace);
            let back = io::from_json(&json).expect("own output parses");
            require_eq!(&back, trace);
            Ok(())
        },
    );
}

/// The simulator always matches the analytic model and never sees
/// integrity errors, on random traces and random placements.
#[test]
fn simulator_matches_model_on_random_traces() {
    Checker::new("simulator_matches_model_on_random_traces").run(
        |rng| (arb_trace(rng, 12, 150), rng.gen_range(0..50u64)),
        |(trace, seed)| {
            let graph = AccessGraph::from_trace(trace);
            let p = RandomPlacement::new(*seed).place(&graph);
            let analytic = SinglePortCost::new().trace_cost(&p, trace).stats.shifts;
            // Three-way cross-validation: the frozen CSR arrangement
            // cost must match the analytic replay (minus the first
            // alignment) and the bit-level simulator below.
            let csr_cost = CsrGraph::freeze(&graph).arrangement_cost(p.offsets());
            let alignment = p.offset_of_id(trace.accesses()[0].item) as u64;
            require_eq!(csr_cost + alignment, analytic);
            let config = DeviceConfig::builder()
                .domains_per_track(graph.num_items().max(1))
                .tracks_per_dbc(16)
                .build()
                .expect("valid");
            let mut sim = SpmSimulator::new(&config, &p).expect("fits");
            let report = sim.run(trace).expect("replay");
            require_eq!(report.stats.shifts, analytic);
            require_eq!(report.integrity_errors, 0);
            Ok(())
        },
    );
}

/// Freezing a graph into CSR form preserves every query: edge
/// iteration (order included), degrees, total weight, arrangement
/// costs, and bitmask cut weights.
#[test]
fn csr_freeze_preserves_graph_queries() {
    Checker::new("csr_freeze_preserves_graph_queries").run(
        |rng| {
            (
                arb_graph(rng, 24),
                rng.gen_range(0..1000u64),
                rng.gen_range(0..u64::MAX),
            )
        },
        |(graph, seed, raw_set)| {
            let csr = CsrGraph::freeze(graph);
            require_eq!(csr.num_items(), graph.num_items());
            let a: Vec<Edge> = graph.edges().collect();
            let b: Vec<Edge> = csr.edges().collect();
            require_eq!(a, b);
            require_eq!(csr.total_weight(), graph.total_weight());
            for v in 0..graph.num_items() {
                require_eq!(csr.degree(v), graph.degree(v));
                let gn: Vec<(usize, u64)> = graph.neighbors(v).collect();
                let cn: Vec<(usize, u64)> = csr.neighbors(v).collect();
                require_eq!(gn, cn);
            }
            let p = RandomPlacement::new(*seed).place(graph);
            require_eq!(
                csr.arrangement_cost(p.offsets()),
                graph.arrangement_cost(p.offsets())
            );
            let set = raw_set & ((1u64 << graph.num_items()) - 1);
            require_eq!(csr.cut_weight_mask(set), graph.cut_weight_mask(set));
            Ok(())
        },
    );
}

/// The incremental arrangement evaluator's running total equals a full
/// recomputation after any sequence of swaps, relocations, and undos,
/// and a full unwind restores the starting state exactly.
#[test]
fn arrangement_eval_matches_full_recompute() {
    Checker::new("arrangement_eval_matches_full_recompute").run(
        |rng| {
            let graph = arb_graph(rng, 20);
            let n = graph.num_items();
            let seed = rng.gen_range(0..1000u64);
            let moves: Vec<(u8, usize, usize)> = (0..40)
                .map(|_| {
                    (
                        rng.gen_range(0u8..5),
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                    )
                })
                .collect();
            (graph, seed, moves)
        },
        |(graph, seed, moves)| {
            let csr = CsrGraph::freeze(graph);
            let start = RandomPlacement::new(*seed).place(graph);
            let mut eval = ArrangementEval::new(&csr, start.offsets());
            let initial = eval.total();
            require_eq!(initial, graph.arrangement_cost(start.offsets()));
            for &(kind, x, y) in moves {
                match kind {
                    // Swap two items (by item index).
                    0 | 1 => {
                        let delta = eval.swap_delta(x, y);
                        eval.apply_swap_with_delta(x, y, delta);
                    }
                    // Relocate between two slots.
                    2 | 3 => {
                        eval.apply_relocate(x, y);
                    }
                    // Undo the most recent move, if any.
                    _ => {
                        eval.undo();
                    }
                }
                require_eq!(eval.total(), graph.arrangement_cost(eval.positions()));
            }
            while eval.undo() {}
            require_eq!(eval.total(), initial);
            require_eq!(eval.positions(), start.offsets());
            Ok(())
        },
    );
}

/// Graph construction: total edge weight equals the number of
/// distinct-item transitions in the trace.
#[test]
fn graph_weight_matches_transitions() {
    Checker::new("graph_weight_matches_transitions").run(
        |rng| arb_trace(rng, 24, 300),
        |trace| {
            let graph = AccessGraph::from_trace(trace);
            require_eq!(graph.total_weight() as usize, trace.stats().transitions);
            Ok(())
        },
    );
}

/// SPM layouts assign every item a unique in-capacity slot.
#[test]
fn spm_layouts_are_injective() {
    Checker::new("spm_layouts_are_injective").run(
        |rng| arb_trace(rng, 24, 300),
        |trace| {
            let alloc = SpmAllocator::new(4, 8);
            let layout = alloc
                .allocate(trace, &GroupedChainGrowth)
                .expect("24 items fit 4x8");
            let mut slots = std::collections::HashSet::new();
            for item in 0..layout.num_items() {
                require!(layout.dbc_of(item) < 4);
                require!(layout.offset_of(item) < 8);
                require!(slots.insert((layout.dbc_of(item), layout.offset_of(item))));
            }
            Ok(())
        },
    );
}

/// The branch-and-bound exact solver always matches the subset-DP
/// optimum on random access graphs.
#[test]
fn exact_solvers_agree() {
    use dwm_placement::core::exact_bb::branch_and_bound_placement;
    Checker::new("exact_solvers_agree").run(
        |rng| arb_graph(rng, 10),
        |graph| {
            let (_, dp) = optimal_placement(graph).expect("small instance");
            let (p, bb) = branch_and_bound_placement(graph).expect("small instance");
            require_eq!(dp, bb);
            require_eq!(graph.arrangement_cost(p.offsets()), bb);
            Ok(())
        },
    );
}

/// A typed port layout with every port read-write agrees with the
/// plain multi-port model; removing writers never helps.
#[test]
fn typed_ports_are_consistent() {
    use dwm_placement::device::TypedPortLayout;
    Checker::new("typed_ports_are_consistent").run(
        |rng| (arb_trace(rng, 16, 200), rng.gen_range(0..50u64)),
        |(trace, seed)| {
            let graph = AccessGraph::from_trace(trace);
            let p = RandomPlacement::new(*seed).place(&graph);
            let l = 16usize;
            let all_rw = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 4, l))
                .trace_cost(&p, trace)
                .stats
                .shifts;
            let multi = MultiPortCost::evenly_spaced(4, l)
                .trace_cost(&p, trace)
                .stats
                .shifts;
            require_eq!(all_rw, multi);
            let one_rw = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, l))
                .trace_cost(&p, trace)
                .stats
                .shifts;
            require!(one_rw >= all_rw);
            Ok(())
        },
    );
}

/// Cache invariants: hits + misses = accesses; shift count is
/// consistent with way distances (bounded by ways−1 per access +
/// promotions).
#[test]
fn cache_counters_are_consistent() {
    Checker::new("cache_counters_are_consistent").run(
        |rng| arb_trace(rng, 64, 400),
        |trace| {
            let mut cache = DwmCache::new(CacheConfig::new(4, 4).expect("valid"));
            let stats = cache.run_trace(trace);
            require_eq!(stats.accesses(), trace.len() as u64);
            require!(stats.shifts <= stats.accesses() * 3);
            require!(stats.hit_ratio() >= 0.0 && stats.hit_ratio() <= 1.0);
            Ok(())
        },
    );
}

/// Start-gap rotation conserves total writes and never leaves the
/// slot histogram inconsistent with the trace's write count.
#[test]
fn wear_rotation_conserves_writes() {
    use dwm_placement::core::wear::{RotatingEvaluator, WearConfig};
    Checker::new("wear_rotation_conserves_writes").run(
        |rng| (arb_trace(rng, 16, 300), rng.gen_range(1..50u64)),
        |(trace, period)| {
            let n = trace.num_items();
            let placement = Placement::identity(n);
            let report = RotatingEvaluator::new(WearConfig::every_writes(*period, n))
                .evaluate(&placement, trace);
            let total_writes: u64 = report.slot_writes.iter().sum();
            require_eq!(total_writes, trace.stats().writes as u64);
            require_eq!(
                report.total_shifts(),
                report.access_shifts + report.rotation_shifts
            );
            Ok(())
        },
    );
}

/// Streaming a trace through a [`DeltaGraph`] — under a random
/// refreeze cadence — answers every query exactly like an
/// [`AccessGraph`] rebuilt from scratch, and after a final refreeze
/// the frozen CSR base is field-identical (`==`, covering every
/// derived cache) to freezing the rebuilt graph. The serve session
/// subsystem's determinism rests on this.
fn check_delta_graph_matches_rebuilt(name: &str, threads: usize) {
    use dwm_foundation::par;
    let _guard = par::override_threads(threads);
    Checker::new(name).run(
        |rng| {
            (
                arb_trace(rng, 24, 400),
                rng.gen_range(0..64usize),
                rng.gen_range(0..100u64),
            )
        },
        |(trace, refreeze_every, seed)| {
            let n = trace.num_items();
            let mut delta = DeltaGraph::new(n);
            let mut scratch = AccessGraph::with_items(n);
            let mut last: Option<usize> = None;
            for (step, access) in trace.accesses().iter().enumerate() {
                let i = access.item.index();
                delta.record_access(i);
                scratch.set_frequency(i, scratch.frequency(i) + 1);
                if let Some(prev) = last {
                    if prev != i {
                        delta.add_weight(prev, i, 1);
                        scratch.add_weight(prev, i, 1);
                    }
                }
                last = Some(i);
                if *refreeze_every > 0 && step % refreeze_every == 0 {
                    delta.maybe_refreeze(*refreeze_every);
                }
            }
            // Every live query agrees with the rebuilt graph.
            require_eq!(delta.num_items(), scratch.num_items());
            require_eq!(delta.num_edges(), scratch.num_edges());
            require_eq!(delta.total_weight(), scratch.total_weight());
            require_eq!(delta.frequencies(), scratch.frequencies());
            for u in 0..n {
                require_eq!(delta.degree(u), scratch.degree(u));
                for v in 0..n {
                    if u != v {
                        require_eq!(delta.weight(u, v), scratch.weight(u, v));
                    }
                }
            }
            let p = RandomPlacement::new(*seed).place(&scratch);
            require_eq!(
                delta.arrangement_cost(p.offsets()),
                scratch.arrangement_cost(p.offsets())
            );
            require_eq!(delta.fingerprint(), fingerprint(&scratch));
            require!(
                delta.to_access_graph() == scratch,
                "to_access_graph diverged from the rebuilt graph"
            );
            // After a forced refreeze, the CSR base must be identical
            // to freezing the rebuilt graph — same adjacency, same
            // derived caches, byte for byte.
            delta.refreeze();
            require_eq!(delta.base(), &CsrGraph::freeze(&scratch));
            require_eq!(delta.fingerprint(), fingerprint(&scratch));
            Ok(())
        },
    );
}

/// Delta-overlay maintenance equals rebuild-from-scratch, sequentially.
#[test]
fn delta_graph_matches_rebuilt_graph_at_one_thread() {
    check_delta_graph_matches_rebuilt("delta_graph_matches_rebuilt_graph_at_one_thread", 1);
}

/// The same equivalence with the worker pool at width 8 — graph
/// maintenance must not depend on `DWM_THREADS`.
#[test]
fn delta_graph_matches_rebuilt_graph_at_eight_threads() {
    check_delta_graph_matches_rebuilt("delta_graph_matches_rebuilt_graph_at_eight_threads", 8);
}

/// The online placer's access+migration accounting is internally
/// consistent and its final placement is a valid permutation.
#[test]
fn online_placer_invariants() {
    use dwm_placement::core::online::{OnlineConfig, OnlinePlacer};
    Checker::new("online_placer_invariants").run(
        |rng| arb_trace(rng, 16, 600),
        |trace| {
            let report = OnlinePlacer::new(OnlineConfig {
                window: 100,
                migration_shifts_per_item: 8,
                ..OnlineConfig::default()
            })
            .run(trace);
            require_eq!(
                report.total_shifts(),
                report.access_shifts + report.migration_shifts
            );
            let p = &report.final_placement;
            let mut seen = vec![false; p.num_items()];
            for off in 0..p.num_items() {
                require!(!seen[p.item_at(off)]);
                seen[p.item_at(off)] = true;
            }
            Ok(())
        },
    );
}
