//! Exact optimal placement by branch and bound.
//!
//! An independent exact solver used to cross-check the subset DP in
//! [`crate::exact`] (two implementations agreeing on the optimum is a
//! strong correctness signal) and to handle slightly larger sparse
//! instances: where the DP's `O(2ⁿ)` table is indifferent to structure,
//! branch and bound prunes aggressively on graphs with strong locality.
//!
//! # Search and bounds
//!
//! Positions are filled left to right; a node of the search tree is a
//! prefix of the order. Its cost-so-far uses the prefix-cut identity
//! (see [`crate::exact`]): extending the prefix adds `cut(prefix)` to
//! the objective. The lower bound is `cost_so_far + Σ w(u,v)` over
//! edges with **both endpoints unplaced** — each such edge will span at
//! least one future boundary, while an edge already crossing the
//! boundary may contribute nothing more. The incumbent is seeded with
//! the [`Hybrid`](crate::Hybrid) heuristic so pruning bites from the
//! first descent, and children are explored weakest-cut-first.
//!
//! # Parallel root branching
//!
//! The first level of the search tree (the choice of leftmost item) is
//! fanned out over [`dwm_foundation::par`] workers, which share the
//! incumbent *bound* through an [`AtomicMin`]. Sharing is asymmetric by
//! design to keep the result byte-deterministic at any `DWM_THREADS`:
//!
//! * each root subtree records only orders **strictly better** than its
//!   own local record (seeded at the heuristic cost), so which order a
//!   root reports never depends on other workers;
//! * the shared bound prunes only nodes whose lower bound is
//!   **strictly above** it. Since the bound never drops below the true
//!   optimum `C`, a path to a cost-`C` order (every prefix of which has
//!   lower bound `≤ C`) can never be cut by another worker's progress —
//!   pruning timing affects wasted work, not recorded optima;
//! * the final winner is the lowest-cost root record, ties broken by
//!   root order.

use dwm_foundation::par::{self, AtomicMin};
use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::PlacementAlgorithm;
use crate::error::PlacementError;
use crate::placement::Placement;

/// Hard limit for the branch-and-bound solver. Above ~24 items even
/// well-pruned search trees explode on dense graphs.
pub const MAX_BB_ITEMS: usize = 24;

struct Search<'g> {
    csr: &'g CsrGraph,
    n: usize,
    /// Record threshold: starts at the heuristic seed cost; only
    /// strictly better complete orders are recorded. Purely local, so
    /// the recorded order is independent of other workers' timing.
    local_best: u64,
    /// Best complete order found in this subtree, if any beat the seed.
    best_order: Option<Vec<usize>>,
    /// Shared incumbent bound across all root subtrees.
    global_best: &'g AtomicMin,
    /// Current prefix.
    prefix: Vec<usize>,
    in_prefix: Vec<bool>,
    /// Σ of weights of edges with *both* endpoints unplaced. Each such
    /// edge will span at least one future boundary, so it contributes
    /// at least its weight to the final cost; edges already crossing
    /// the prefix boundary can contribute 0 more (their second endpoint
    /// may be placed immediately next), so they are excluded.
    remaining_edge_weight: u64,
    /// Nodes this subtree visited — flushed to the obs registry by the
    /// caller after the subtree completes.
    nodes: u64,
    /// Nodes cut off by the bound check. Unlike everything the solver
    /// *returns*, this count legitimately varies with `DWM_THREADS`:
    /// pruning depends on when other workers publish a better shared
    /// incumbent.
    pruned: u64,
}

impl<'g> Search<'g> {
    fn run(&mut self, cost_so_far: u64, cut: u64) {
        self.nodes += 1;
        if self.prefix.len() == self.n {
            if cost_so_far < self.local_best {
                self.local_best = cost_so_far;
                self.best_order = Some(self.prefix.clone());
                self.global_best.improve(cost_so_far);
            }
            return;
        }
        // Lower bound: every still-internal edge of the complement
        // contributes at least its weight once both ends are placed.
        // Local pruning is non-strict (nothing >= our own record can
        // improve it); shared pruning is strict (see module docs).
        let bound = cost_so_far + self.remaining_edge_weight;
        if bound >= self.local_best || bound > self.global_best.get() {
            self.pruned += 1;
            return;
        }
        // Order candidates by the cut they would produce (weakest cut
        // first) — good solutions early tighten the bound.
        let mut candidates: Vec<(u64, u64, usize)> = (0..self.n)
            .filter(|&v| !self.in_prefix[v])
            .map(|v| {
                // cut(prefix ∪ {v}) = cut + deg(v) − 2·w(v, prefix)
                let mut into = 0u64;
                let mut outside = 0u64;
                let (us, ws) = self.csr.neighbor_slices(v);
                for (&u, &w) in us.iter().zip(ws) {
                    if self.in_prefix[u as usize] {
                        into += w;
                    } else {
                        outside += w;
                    }
                }
                (cut + self.csr.degree(v) - 2 * into, outside, v)
            })
            .collect();
        candidates.sort_unstable();

        for (next_cut, edge_to_unplaced, v) in candidates {
            // Placing v turns its fully-unplaced edges into crossing
            // edges, which leave the remaining-edge bound.
            self.prefix.push(v);
            self.in_prefix[v] = true;
            self.remaining_edge_weight -= edge_to_unplaced;
            let add = if self.prefix.len() == self.n {
                0
            } else {
                next_cut
            };
            self.run(cost_so_far + add, next_cut);
            self.remaining_edge_weight += edge_to_unplaced;
            self.in_prefix[v] = false;
            self.prefix.pop();
        }
    }
}

/// Computes a provably optimal placement by branch and bound.
///
/// The root level of the search fans out over `DWM_THREADS` workers
/// (see the module docs); the returned order is identical at any
/// worker count. Produces the same cost as
/// [`crate::exact::optimal_placement`] (verified by tests); the
/// returned order may differ when several optima exist.
///
/// # Errors
///
/// Returns [`PlacementError::TooLargeForExact`] when the graph has more
/// than [`MAX_BB_ITEMS`] items.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::path_graph;
/// use dwm_core::exact_bb::branch_and_bound_placement;
///
/// let g = path_graph(8, 2);
/// let (_, cost) = branch_and_bound_placement(&g)?;
/// assert_eq!(cost, 14);
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
pub fn branch_and_bound_placement(graph: &AccessGraph) -> Result<(Placement, u64), PlacementError> {
    let n = graph.num_items();
    if n > MAX_BB_ITEMS {
        return Err(PlacementError::TooLargeForExact {
            items: n,
            limit: MAX_BB_ITEMS,
        });
    }
    if n == 0 {
        return Ok((Placement::identity(0), 0));
    }
    // Freeze once; every root subtree shares the CSR arrays.
    let csr = CsrGraph::freeze(graph);
    // Seed the incumbent with a good heuristic so pruning bites
    // immediately.
    let seed = crate::algorithms::Hybrid::default().place(graph);
    let seed_cost = csr.arrangement_cost(seed.offsets());
    let global_best = AtomicMin::new(seed_cost);

    // Root candidates, ordered exactly as the sequential search orders
    // children: weakest first cut (here: degree) first.
    let mut roots: Vec<(u64, usize)> = (0..n).map(|v| (csr.degree(v), v)).collect();
    roots.sort_unstable();

    // One independent subtree search per root; the shared bound only
    // accelerates pruning (see module docs for why this stays
    // deterministic at any worker count).
    let results: Vec<(u64, Option<Vec<usize>>)> = par::par_map(&roots, |&(root_cut, v)| {
        let mut in_prefix = vec![false; n];
        in_prefix[v] = true;
        let mut search = Search {
            csr: &csr,
            n,
            local_best: seed_cost,
            best_order: None,
            global_best: &global_best,
            prefix: vec![v],
            in_prefix,
            remaining_edge_weight: csr.total_weight() - csr.degree(v),
            nodes: 0,
            pruned: 0,
        };
        let add = if n == 1 { 0 } else { root_cut };
        search.run(add, root_cut);
        nodes_counter().add(search.nodes);
        pruned_counter().add(search.pruned);
        (search.local_best, search.best_order)
    });

    let mut best_cost = seed_cost;
    let mut best_order = seed.order().to_vec();
    for (cost, order) in results {
        if let Some(order) = order {
            if cost < best_cost {
                best_cost = cost;
                best_order = order;
            }
        }
    }
    let placement = Placement::from_order(best_order);
    debug_assert_eq!(graph.arrangement_cost(placement.offsets()), best_cost);
    Ok((placement, best_cost))
}

/// Search-tree nodes visited across all branch-and-bound runs.
pub(crate) fn nodes_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_bb_nodes_total",
        "Search-tree nodes visited by branch and bound"
    )
}

/// Subtrees pruned across all branch-and-bound runs. Varies with
/// `DWM_THREADS` (shared-incumbent timing); the *returned placement*
/// does not.
pub(crate) fn pruned_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_bb_pruned_total",
        "Subtrees cut off by the branch-and-bound lower bound"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_placement;
    use dwm_graph::generators::{clustered_graph, path_graph, random_graph};

    #[test]
    fn agrees_with_subset_dp_on_random_graphs() {
        for seed in 0..10 {
            let g = random_graph(10, 0.5, 7, seed);
            let (_, dp) = optimal_placement(&g).unwrap();
            let (p, bb) = branch_and_bound_placement(&g).unwrap();
            assert_eq!(dp, bb, "seed {seed}");
            assert_eq!(g.arrangement_cost(p.offsets()), bb);
        }
    }

    #[test]
    fn agrees_with_subset_dp_on_clustered_graphs() {
        for seed in 0..6 {
            let g = clustered_graph(12, 3, 0.8, 0.2, 5, seed);
            let (_, dp) = optimal_placement(&g).unwrap();
            let (_, bb) = branch_and_bound_placement(&g).unwrap();
            assert_eq!(dp, bb, "seed {seed}");
        }
    }

    #[test]
    fn path_is_solved_exactly() {
        let g = path_graph(12, 4);
        let (_, cost) = branch_and_bound_placement(&g).unwrap();
        assert_eq!(cost, 11 * 4);
    }

    #[test]
    fn rejects_oversized_instances() {
        let g = AccessGraph::with_items(MAX_BB_ITEMS + 1);
        assert!(matches!(
            branch_and_bound_placement(&g),
            Err(PlacementError::TooLargeForExact { .. })
        ));
    }

    #[test]
    fn trivial_instances() {
        let (p, c) = branch_and_bound_placement(&AccessGraph::with_items(0)).unwrap();
        assert_eq!((p.num_items(), c), (0, 0));
        let (p, c) = branch_and_bound_placement(&AccessGraph::with_items(1)).unwrap();
        assert_eq!((p.num_items(), c), (1, 0));
    }

    #[test]
    fn handles_sparse_larger_instances() {
        // 22 items is beyond the DP's comfort but fine for B&B on a
        // path-like sparse graph.
        let g = path_graph(22, 2);
        let (_, cost) = branch_and_bound_placement(&g).unwrap();
        assert_eq!(cost, 21 * 2);
    }

    #[test]
    fn identical_placement_at_any_worker_count() {
        use dwm_foundation::par::override_threads;
        let _l = crate::algorithms::test_support::PAR_TEST_LOCK
            .lock()
            .unwrap();
        for seed in 0..5 {
            let g = random_graph(11, 0.45, 6, seed);
            let sequential = {
                let _g = override_threads(1);
                branch_and_bound_placement(&g).unwrap()
            };
            let parallel = {
                let _g = override_threads(8);
                branch_and_bound_placement(&g).unwrap()
            };
            assert_eq!(sequential, parallel, "seed {seed}");
        }
    }
}
