use std::collections::BTreeMap;

use dwm_trace::Trace;

/// One weighted undirected edge of an [`AccessGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Number of adjacent co-accesses of `u` and `v` in the trace.
    pub weight: u64,
}

dwm_foundation::json_struct!(Edge { u, v, weight });

/// Undirected, integer-weighted graph over data items.
///
/// Vertices are dense item indices `0..n`. Adjacency is stored as one
/// ordered map per vertex, which keeps iteration deterministic (required
/// for reproducible placements) and scales to the few-thousand-item
/// graphs of the runtime-scaling experiment without a dense `n²` matrix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessGraph {
    adj: Vec<BTreeMap<usize, u64>>,
    /// Per-item total access count (vertex weights; used by
    /// frequency-aware placement).
    frequency: Vec<u64>,
}

dwm_foundation::json_struct!(AccessGraph { adj, frequency });

impl AccessGraph {
    /// An edgeless graph over `n` items.
    pub fn with_items(n: usize) -> Self {
        AccessGraph {
            adj: vec![BTreeMap::new(); n],
            frequency: vec![0; n],
        }
    }

    /// Builds the access graph of a trace: edge `{u,v}` counts adjacent
    /// accesses of distinct items `u, v`; vertex weights count accesses.
    ///
    /// The trace must use dense item ids (see
    /// [`Trace::normalize`](dwm_trace::Trace::normalize)); all kernel
    /// and generator traces already do.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut g = AccessGraph::with_items(trace.num_items());
        for a in trace.iter() {
            g.frequency[a.item.index()] += 1;
        }
        for pair in trace.accesses().windows(2) {
            let (u, v) = (pair[0].item.index(), pair[1].item.index());
            if u != v {
                g.add_weight(u, v, 1);
            }
        }
        g
    }

    /// Number of items (vertices).
    pub fn num_items(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|m| m.len()).sum::<usize>() / 2
    }

    /// Adds `w` to the weight of edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loops carry no shift cost and are
    /// rejected to keep invariants simple) or if either endpoint is out
    /// of range.
    pub fn add_weight(&mut self, u: usize, v: usize, w: u64) {
        assert_ne!(u, v, "self-loops are not representable");
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "vertex out of range"
        );
        *self.adj[u].entry(v).or_insert(0) += w;
        *self.adj[v].entry(u).or_insert(0) += w;
    }

    /// Weight of edge `{u, v}` (0 if absent or if `u == v`).
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        self.adj
            .get(u)
            .and_then(|m| m.get(&v))
            .copied()
            .unwrap_or(0)
    }

    /// Access count of item `i` (vertex weight).
    pub fn frequency(&self, i: usize) -> u64 {
        self.frequency.get(i).copied().unwrap_or(0)
    }

    /// All per-item access counts.
    pub fn frequencies(&self) -> &[u64] {
        &self.frequency
    }

    /// Sets the access count of item `i` (used by generators).
    pub fn set_frequency(&mut self, i: usize, f: u64) {
        self.frequency[i] = f;
    }

    /// Weighted degree of vertex `u` (sum of incident edge weights).
    pub fn degree(&self, u: usize) -> u64 {
        self.adj[u].values().sum()
    }

    /// Neighbours of `u` with edge weights, in ascending vertex order.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.adj[u].iter().map(|(&v, &w)| (v, w))
    }

    /// All edges, each reported once with `u < v`, in lexicographic
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, m)| {
            m.iter()
                .filter(move |&(&v, _)| u < v)
                .map(move |(&v, &w)| Edge { u, v, weight: w })
        })
    }

    /// Sum of all edge weights (= number of distinct-item transitions
    /// in the source trace).
    pub fn total_weight(&self) -> u64 {
        self.edges().map(|e| e.weight).sum()
    }

    /// Linear arrangement cost of placing item `i` at position
    /// `position[i]`: `Σ w(u,v)·|position[u] − position[v]|`.
    ///
    /// This is the single-port shift count of the placement, minus the
    /// initial alignment (which no placement can influence in the
    /// steady state).
    ///
    /// # Panics
    ///
    /// Panics if `position.len() < num_items()`.
    pub fn arrangement_cost(&self, position: &[usize]) -> u64 {
        assert!(
            position.len() >= self.num_items(),
            "position vector shorter than item count"
        );
        self.edges()
            .map(|e| e.weight * (position[e.u] as i64).abs_diff(position[e.v] as i64))
            .sum()
    }

    /// Weight of the cut between `set` (as a bitmask over vertices,
    /// only valid for `n ≤ 64`) and its complement. Used by the exact
    /// DP, whose instances are capped well below 64 items.
    pub fn cut_weight_mask(&self, set: u64) -> u64 {
        let mut cut = 0;
        for e in self.edges() {
            let in_u = set >> e.u & 1;
            let in_v = set >> e.v & 1;
            if in_u != in_v {
                cut += e.weight;
            }
        }
        cut
    }

    /// Dense Laplacian matrix `L = D − W` in row-major `f64`, used by
    /// the spectral placement algorithm.
    pub fn laplacian(&self) -> Vec<f64> {
        let n = self.num_items();
        let mut l = vec![0.0; n * n];
        for u in 0..n {
            l[u * n + u] = self.degree(u) as f64;
            for (v, w) in self.neighbors(u) {
                l[u * n + v] = -(w as f64);
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> AccessGraph {
        // 0-1 heavy, 1-2, 2-3, 0-3 light.
        let mut g = AccessGraph::with_items(4);
        g.add_weight(0, 1, 5);
        g.add_weight(1, 2, 1);
        g.add_weight(2, 3, 1);
        g.add_weight(0, 3, 1);
        g
    }

    #[test]
    fn from_trace_counts_transitions() {
        let t = Trace::from_ids([0u32, 1, 1, 2, 0]);
        let g = AccessGraph::from_trace(&t);
        assert_eq!(g.weight(0, 1), 1);
        assert_eq!(g.weight(1, 2), 1);
        assert_eq!(g.weight(0, 2), 1);
        // Self-transition 1→1 is not an edge.
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.frequency(0), 2);
        assert_eq!(g.frequency(1), 2);
    }

    #[test]
    fn weight_is_symmetric() {
        let g = diamond();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(g.weight(u, v), g.weight(v, u));
            }
        }
    }

    #[test]
    fn degree_sums_incident_weights() {
        let g = diamond();
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(1), 6);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn edges_are_unique_and_ordered() {
        let g = diamond();
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        assert!(edges.iter().all(|e| e.u < e.v));
    }

    #[test]
    fn total_weight_matches_trace_transitions() {
        let t = Trace::from_ids([3u32, 1, 4, 1, 5, 5]).normalize();
        let g = AccessGraph::from_trace(&t);
        assert_eq!(g.total_weight() as usize, t.stats().transitions);
    }

    #[test]
    fn arrangement_cost_of_identity() {
        let g = diamond();
        // |0−1|·5 + |1−2|·1 + |2−3|·1 + |0−3|·3? no: |0−3|·1 = 3.
        assert_eq!(g.arrangement_cost(&[0, 1, 2, 3]), 5 + 1 + 1 + 3);
    }

    #[test]
    fn arrangement_cost_detects_better_order() {
        let g = diamond();
        // Keeping the heavy pair adjacent and closing the cycle:
        // order 1,0,3,2 → pos[1]=0,pos[0]=1,pos[3]=2,pos[2]=3.
        let better = [1usize, 0, 2, 3]; // positions indexed by item
        assert!(g.arrangement_cost(&better) <= g.arrangement_cost(&[0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        diamond().add_weight(2, 2, 1);
    }

    #[test]
    fn cut_weight_mask_counts_crossing_edges() {
        let g = diamond();
        // set = {0,1}: crossing edges 1-2 (1) and 0-3 (1).
        assert_eq!(g.cut_weight_mask(0b0011), 2);
        // set = {0}: crossing 0-1 (5) and 0-3 (1).
        assert_eq!(g.cut_weight_mask(0b0001), 6);
        assert_eq!(g.cut_weight_mask(0b1111), 0);
        assert_eq!(g.cut_weight_mask(0), 0);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = diamond();
        let l = g.laplacian();
        for u in 0..4 {
            let row_sum: f64 = (0..4).map(|v| l[u * 4 + v]).sum();
            assert!(row_sum.abs() < 1e-12);
        }
        assert_eq!(l[0], 6.0);
        assert_eq!(l[1], -5.0);
    }

    #[test]
    fn json_round_trip() {
        let g = diamond();
        let json = dwm_foundation::json::to_string(&g);
        let back: AccessGraph = dwm_foundation::json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
