//! Cross-crate integration over the extension systems: cache,
//! compiler pass, instruction layout, online placement, wear leveling,
//! typed ports, and the trace-aware refiner — exercised together the
//! way the extension experiments (T6–T9, F8–F11, A1) use them.

use dwm_placement::compile::ir::{AffineExpr, Program};
use dwm_placement::compile::layout::assign_layout;
use dwm_placement::core::algorithms::TraceRefiner;
use dwm_placement::core::online::{OnlineConfig, OnlinePlacer};
use dwm_placement::core::wear::{RotatingEvaluator, WearConfig};
use dwm_placement::isa::{best_layout, BlockOrder, Cfg};
use dwm_placement::prelude::*;

/// The compiler pass's placement, run through the bit-level simulator,
/// produces the exact shift count the pass predicted.
#[test]
fn compiler_pass_cross_validates_on_simulator() {
    let mut p = Program::new();
    let a = p.array("a", 32, 2);
    let b = p.array("b", 32, 2);
    let i = p.loop_var("i");
    p.for_loop(i, 0, 32, |body| {
        body.read(a, AffineExpr::var(i));
        body.read(b, AffineExpr::var(i).scale(7).modulo(32));
        body.write(a, AffineExpr::var(i));
    });
    let layout = assign_layout(&p, &Hybrid::default()).expect("valid program");
    let config = DeviceConfig::builder()
        .domains_per_track(layout.placement.num_items())
        .tracks_per_dbc(32)
        .build()
        .expect("valid config");
    let mut sim = SpmSimulator::new(&config, &layout.placement).expect("fits");
    let report = sim.run(&layout.trace).expect("replay");
    assert_eq!(report.stats.shifts, layout.tuned_shifts);
    assert_eq!(report.integrity_errors, 0);
}

/// Kernel traces drive the DWM cache; shift-aware policies never cost
/// more shifts than plain LRU on the whole suite in aggregate.
#[test]
fn cache_shift_aware_wins_in_aggregate() {
    let mut lru_total = 0u64;
    let mut aware_total = 0u64;
    for kernel in Kernel::suite() {
        let trace = kernel.trace();
        let mut lru = DwmCache::new(CacheConfig::new(4, 8).expect("valid"));
        lru_total += lru.run_trace(&trace).shifts;
        let mut aware = DwmCache::new(
            CacheConfig::new(4, 8)
                .expect("valid")
                .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 }),
        );
        aware_total += aware.run_trace(&trace).shifts;
    }
    assert!(
        aware_total <= lru_total,
        "shift-aware {aware_total} vs lru {lru_total}"
    );
}

/// The instruction-layout pipeline respects its never-worse guarantee
/// across CFG shapes, and its output is a valid permutation.
#[test]
fn instruction_layout_guarantees() {
    for cfg in [
        Cfg::random(32, 3, 1),
        Cfg::random(48, 4, 2),
        Cfg::structured(4, 5, 500),
    ] {
        let naive = BlockOrder::program_order(&cfg).cost(&cfg);
        let tuned = best_layout(&cfg);
        assert!(tuned.cost(&cfg) <= naive);
        let mut seen = vec![false; cfg.num_blocks()];
        for k in 0..cfg.num_blocks() {
            let b = tuned.block_at(k);
            assert!(!seen[b.0]);
            seen[b.0] = true;
        }
    }
}

/// Online placement wins on workloads with *stable* phases (its design
/// premise: the last window predicts the next). On rapidly churning
/// patterns like FFT stages the lookbehind predictor loses — a
/// documented limitation, not asserted here.
#[test]
fn online_placement_wins_on_stable_phases() {
    // Two long phases of clustered traffic over shuffled item spaces.
    let mut ids = Vec::new();
    for phase in 0..2u64 {
        let t = MarkovGen::new(32, 4, phase).with_stay(0.95).generate(4000);
        let stride = 2 * phase as usize + 1;
        ids.extend(t.iter().map(|a| ((a.item.index() * stride) % 32) as u32));
    }
    let trace = Trace::from_ids(ids);
    let report = OnlinePlacer::new(OnlineConfig {
        window: 512,
        migration_shifts_per_item: 32,
        ..OnlineConfig::default()
    })
    .run(&trace);
    let naive = SinglePortCost::new()
        .trace_cost(&Placement::identity(32), &trace)
        .stats
        .shifts;
    assert!(
        report.total_shifts() < naive,
        "online {} vs naive {naive}",
        report.total_shifts()
    );
    assert!(report.migrations >= 1);
}

/// Wear leveling composes with the hybrid placement: rotation levels
/// the write histogram of a skewed kernel without breaking the shift
/// accounting.
#[test]
fn wear_leveling_composes_with_placement() {
    let trace = Kernel::Histogram {
        bins: 48,
        samples: 600,
        seed: 1,
    }
    .trace();
    let graph = AccessGraph::from_trace(&trace);
    let placement = Hybrid::default().place(&graph);
    let n = graph.num_items();
    let fixed = RotatingEvaluator::new(WearConfig::disabled()).evaluate(&placement, &trace);
    let level =
        RotatingEvaluator::new(WearConfig::every_writes(32, n)).evaluate(&placement, &trace);
    assert!(level.imbalance() < fixed.imbalance());
    let fixed_writes: u64 = fixed.slot_writes.iter().sum();
    let level_writes: u64 = level.slot_writes.iter().sum();
    assert_eq!(fixed_writes, level_writes, "rotation must conserve writes");
}

/// Typed ports + trace refiner: starting from the hybrid placement,
/// refining under the typed model never hurts and the typed cost stays
/// bounded below by the all-writer configuration.
#[test]
fn typed_ports_with_trace_refiner() {
    let trace = Kernel::MergeSort {
        n: 32,
        block: 2,
        seed: 9,
    }
    .trace();
    let graph = AccessGraph::from_trace(&trace);
    let n = graph.num_items();
    let one_writer = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 1, n));
    let all_writers = TypedPortCost::new(TypedPortLayout::evenly_spaced(4, 4, n));
    let base = Hybrid::default().place(&graph);
    let mut refined = base.clone();
    TraceRefiner::default().refine(&one_writer, &trace, &mut refined);
    let refined_cost = one_writer.trace_cost(&refined, &trace).stats.shifts;
    assert!(refined_cost <= one_writer.trace_cost(&base, &trace).stats.shifts);
    assert!(all_writers.trace_cost(&refined, &trace).stats.shifts <= refined_cost);
}

/// The whole extension stack in one flow: IR program → trace → cache
/// replay → placement → wear report. Nothing panics, counters stay
/// consistent.
#[test]
fn full_extension_pipeline_smoke() {
    let mut p = Program::new();
    let a = p.array("a", 48, 2);
    let i = p.loop_var("i");
    let j = p.loop_var("j");
    p.for_loop(i, 0, 6, |bi| {
        bi.for_loop(j, 0, 48, |bj| {
            bj.read(a, AffineExpr::var(j));
            bj.write(a, AffineExpr::var(j).scale(5).modulo(48));
        });
    });
    let layout = assign_layout(&p, &Hybrid::default()).expect("valid");
    let mut cache = DwmCache::new(CacheConfig::new(4, 4).expect("valid"));
    let cache_stats = cache.run_trace(&layout.trace);
    assert_eq!(cache_stats.accesses(), layout.trace.len() as u64);
    let wear = RotatingEvaluator::new(WearConfig::every_writes(64, 24))
        .evaluate(&layout.placement, &layout.trace);
    assert_eq!(
        wear.slot_writes.iter().sum::<u64>(),
        layout.trace.stats().writes as u64
    );
}
