use crate::config::DeviceConfig;
use crate::stats::ShiftStats;
use crate::topology::{Topology, TrackTopology};

/// Energy breakdown of a replayed workload, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessEnergy {
    /// Energy spent shifting tapes.
    pub shift_pj: f64,
    /// Energy spent on port reads.
    pub read_pj: f64,
    /// Energy spent on port writes.
    pub write_pj: f64,
    /// Leakage over the active interval.
    pub leakage_pj: f64,
}

dwm_foundation::json_struct!(AccessEnergy {
    shift_pj,
    read_pj,
    write_pj,
    leakage_pj
});

impl AccessEnergy {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.shift_pj + self.read_pj + self.write_pj + self.leakage_pj
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1000.0
    }
}

/// Latency breakdown of a replayed workload, in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessLatency {
    /// Cycles spent shifting.
    pub shift_cycles: u64,
    /// Cycles spent on port reads.
    pub read_cycles: u64,
    /// Cycles spent on port writes.
    pub write_cycles: u64,
}

dwm_foundation::json_struct!(AccessLatency {
    shift_cycles,
    read_cycles,
    write_cycles
});

impl AccessLatency {
    /// Total cycles.
    pub fn total_cycles(&self) -> u64 {
        self.shift_cycles + self.read_cycles + self.write_cycles
    }

    /// Total latency in nanoseconds given the clock period.
    pub fn total_ns(&self, clock_ns: f64) -> f64 {
        self.total_cycles() as f64 * clock_ns
    }
}

/// Projects raw shift/access counters into latency and energy using a
/// device configuration.
///
/// This is how the experiment harness converts the placement
/// algorithms' shift counts (the quantity the paper optimizes) into the
/// latency/energy improvements its figures report.
///
/// # Example
///
/// ```
/// use dwm_device::{CostProjection, DeviceConfig, ShiftStats};
///
/// let config = DeviceConfig::default();
/// let mut stats = ShiftStats::new();
/// stats.record(10, false); // one read, 10 shifts
/// let projection = CostProjection::new(&config);
/// let latency = projection.latency(&stats);
/// assert_eq!(
///     latency.total_cycles(),
///     10 * config.timing().shift_cycles + config.timing().read_cycles
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CostProjection {
    config: DeviceConfig,
    /// Energy premium per shift step from the track topology (1.0 for
    /// linear — the legacy projection, byte-identical).
    shift_energy_weight: f64,
}

impl CostProjection {
    /// Creates a projection for the given device (linear topology).
    pub fn new(config: &DeviceConfig) -> Self {
        CostProjection {
            config: config.clone(),
            shift_energy_weight: 1.0,
        }
    }

    /// Creates a projection whose shift energy carries the topology's
    /// per-step weight (see [`TrackTopology::shift_energy_weight`]).
    /// With [`Topology::linear`] this is identical to [`new`](Self::new).
    pub fn with_topology(config: &DeviceConfig, topology: &Topology) -> Self {
        CostProjection {
            config: config.clone(),
            shift_energy_weight: topology.shift_energy_weight(),
        }
    }

    /// The configuration used by this projection.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Latency of the counted activity, assuming serial accesses.
    pub fn latency(&self, stats: &ShiftStats) -> AccessLatency {
        let t = self.config.timing();
        AccessLatency {
            shift_cycles: stats.shifts * t.shift_cycles,
            read_cycles: stats.reads * t.read_cycles,
            write_cycles: stats.writes * t.write_cycles,
        }
    }

    /// Energy of the counted activity. Shift energy scales with the DBC
    /// track count because all `W` tracks move together; leakage is
    /// charged over the serial-latency interval.
    pub fn energy(&self, stats: &ShiftStats) -> AccessEnergy {
        let e = self.config.energy();
        let w = self.config.tracks_per_dbc() as f64;
        let latency_ns = self.latency(stats).total_ns(self.config.timing().clock_ns);
        AccessEnergy {
            shift_pj: stats.shifts as f64 * w * e.shift_pj_per_track * self.shift_energy_weight,
            read_pj: stats.reads as f64 * e.read_pj,
            write_pj: stats.writes as f64 * e.write_pj,
            // mW × ns = pJ.
            leakage_pj: e.leakage_mw * latency_ns / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(shifts: u64, reads: u64, writes: u64) -> ShiftStats {
        ShiftStats {
            shifts,
            reads,
            writes,
            aligned_hits: 0,
            max_shift: 0,
        }
    }

    #[test]
    fn latency_scales_linearly_with_shifts() {
        let p = CostProjection::new(&DeviceConfig::default());
        let a = p.latency(&stats(100, 10, 0)).total_cycles();
        let b = p.latency(&stats(200, 10, 0)).total_cycles();
        let shift_cycles = DeviceConfig::default().timing().shift_cycles;
        assert_eq!(b - a, 100 * shift_cycles);
    }

    #[test]
    fn energy_charges_all_tracks_per_shift() {
        let config = DeviceConfig::builder().tracks_per_dbc(32).build().unwrap();
        let p = CostProjection::new(&config);
        let e = p.energy(&stats(1, 0, 0));
        let expected = 32.0 * config.energy().shift_pj_per_track;
        assert!((e.shift_pj - expected).abs() < 1e-12);
    }

    #[test]
    fn fewer_shifts_means_less_total_energy() {
        let p = CostProjection::new(&DeviceConfig::default());
        let high = p.energy(&stats(1000, 50, 50)).total_pj();
        let low = p.energy(&stats(100, 50, 50)).total_pj();
        assert!(low < high);
    }

    #[test]
    fn topology_weight_scales_shift_energy_only() {
        let config = DeviceConfig::default();
        let mut s = stats(100, 10, 5);
        s.max_shift = 9;
        let linear = CostProjection::with_topology(&config, &Topology::linear());
        let pirm = CostProjection::with_topology(&config, &Topology::parse("pirm:4").unwrap());
        // Linear topology is byte-identical to the legacy projection.
        assert_eq!(linear.energy(&s), CostProjection::new(&config).energy(&s));
        let (le, pe) = (linear.energy(&s), pirm.energy(&s));
        assert!((pe.shift_pj - le.shift_pj * 1.5).abs() < 1e-9);
        assert_eq!(pe.read_pj, le.read_pj);
        assert_eq!(pe.write_pj, le.write_pj);
        assert_eq!(pirm.latency(&s), linear.latency(&s));
    }

    #[test]
    fn zero_activity_zero_cost() {
        let p = CostProjection::new(&DeviceConfig::default());
        assert_eq!(p.latency(&ShiftStats::new()).total_cycles(), 0);
        assert_eq!(p.energy(&ShiftStats::new()).total_pj(), 0.0);
    }
}
