//! Shift-reducing data placement for domain-wall memories.
//!
//! This crate is the reproduction of the primary contribution of
//! *"Optimizing data placement for reducing shift operations on domain
//! wall memories"* (DAC 2015): given the access behaviour of a workload
//! (a [`Trace`](dwm_trace::Trace) or its
//! [`AccessGraph`](dwm_graph::AccessGraph)), compute a
//! [`Placement`] of data items onto the word offsets of a DWM tape that
//! minimizes the number of shift operations.
//!
//! # Structure
//!
//! * [`Placement`] — a validated bijection between items and offsets;
//! * [`cost`] — analytic shift-cost models ([`SinglePortCost`],
//!   [`MultiPortCost`]) plus latency/energy projection;
//! * [`algorithms`] — the algorithm suite: naive baselines, classic
//!   organ-pipe frequency placement, the adjacency-driven
//!   [`ChainGrowth`]/[`GroupedChainGrowth`] heuristics (the paper's
//!   proposal), spectral ordering, simulated annealing, and a local-
//!   search refiner;
//! * [`exact`] — the exact optimum by dynamic programming over subsets
//!   (the paper's small-instance optimality reference);
//! * [`partition`] and [`spm`] — the multi-DBC extension: partition the
//!   item set across clusters, then order within each cluster.
//!
//! # Example
//!
//! ```
//! use dwm_trace::kernels::Kernel;
//! use dwm_graph::AccessGraph;
//! use dwm_core::prelude::*;
//!
//! let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
//! let graph = AccessGraph::from_trace(&trace);
//!
//! let naive = OrderOfAppearance.place(&graph);
//! let tuned = GroupedChainGrowth::default().place(&graph);
//!
//! let model = SinglePortCost::new();
//! let before = model.trace_cost(&naive, &trace).stats.shifts;
//! let after = model.trace_cost(&tuned, &trace).stats.shifts;
//! assert!(after <= before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod anytime;
pub mod cost;
mod error;
pub mod exact;
pub mod exact_bb;
pub mod online;
pub mod partition;
mod placement;
pub mod spm;
pub mod wear;

pub use algorithms::{
    ChainGrowth, GreedyInsertion, GroupedChainGrowth, Hybrid, LocalSearch, MultiStart,
    OrderOfAppearance, OrganPipe, PlacementAlgorithm, RandomPlacement, SimulatedAnnealing,
    Spectral, TraceRefiner, WindowedDp,
};
pub use anytime::{AnytimeOutcome, AnytimePlacement, AnytimeSolver, Quality, Tier, TierPlan};
pub use cost::{CostModel, CostReport, MultiPortCost, SinglePortCost, TopologyCost, TypedPortCost};
pub use error::PlacementError;
pub use placement::Placement;

/// Registers every metric this crate's solvers can emit in the
/// [`dwm_foundation::obs::global`] registry, so a scrape lists the
/// full solver family (at zero) before any solve has run.
pub fn register_obs_metrics() {
    algorithms::register_obs_metrics();
    let _ = (
        exact_bb::nodes_counter(),
        exact_bb::pruned_counter(),
        partition::refine_passes_counter(),
        partition::swaps_applied_counter(),
        partition::swap_gain_histogram(),
    );
}

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::algorithms::{
        ChainGrowth, GreedyInsertion, GroupedChainGrowth, Hybrid, LocalSearch, MultiStart,
        OrderOfAppearance, OrganPipe, PlacementAlgorithm, RandomPlacement, SimulatedAnnealing,
        Spectral, TraceRefiner, WindowedDp,
    };
    pub use crate::anytime::{
        plan as plan_tier, AnytimeOutcome, AnytimePlacement, AnytimeSolver, Quality, Tier, TierPlan,
    };
    pub use crate::cost::{
        CostModel, CostReport, MultiPortCost, SinglePortCost, TopologyCost, TypedPortCost,
    };
    pub use crate::exact::optimal_placement;
    pub use crate::exact_bb::branch_and_bound_placement;
    pub use crate::online::{
        window_profiles, Decision, OnlineConfig, OnlinePlacer, OnlineReport, WindowProfiles,
    };
    pub use crate::partition::Partitioner;
    pub use crate::spm::{SpmAllocator, SpmLayout};
    pub use crate::wear::{RotatingEvaluator, WearConfig, WearReport};
    pub use crate::{Placement, PlacementError};
}
