//! Cross-crate integration: kernels → graphs → placements → cost
//! models → bit-level simulator, exercised together the way the
//! experiment harness uses them.

use dwm_placement::core::algorithms::standard_suite;
use dwm_placement::core::exact::optimal_placement;
use dwm_placement::prelude::*;

/// Every algorithm produces a valid placement for every kernel, and
/// the proposed hybrid never loses to the naive baseline.
#[test]
fn full_suite_on_all_kernels() {
    let model = SinglePortCost::new();
    for kernel in Kernel::suite() {
        let trace = kernel.trace();
        let graph = AccessGraph::from_trace(&trace);
        let naive = model
            .trace_cost(&Placement::identity(graph.num_items()), &trace)
            .stats
            .shifts;
        for alg in standard_suite(7) {
            let placement = alg.place(&graph);
            assert_eq!(placement.num_items(), graph.num_items());
            let shifts = model.trace_cost(&placement, &trace).stats.shifts;
            assert!(shifts > 0, "{} produced a zero-shift replay", alg.name());
            if alg.name() == "hybrid" {
                assert!(
                    shifts <= naive,
                    "hybrid lost to naive on {}: {shifts} > {naive}",
                    kernel.name()
                );
            }
        }
    }
}

/// The analytic single-port model and the bit-level simulator agree
/// exactly for every kernel × a representative algorithm set.
#[test]
fn simulator_cross_validates_analytic_model() {
    let model = SinglePortCost::new();
    for kernel in Kernel::suite() {
        let trace = kernel.trace();
        let graph = AccessGraph::from_trace(&trace);
        for alg in [
            &OrderOfAppearance as &dyn PlacementAlgorithm,
            &GroupedChainGrowth,
            &Hybrid::default(),
        ] {
            let placement = alg.place(&graph);
            let analytic = model.trace_cost(&placement, &trace).stats.shifts;
            let config = DeviceConfig::builder()
                .domains_per_track(graph.num_items())
                .tracks_per_dbc(32)
                .build()
                .expect("valid config");
            let mut sim = SpmSimulator::new(&config, &placement).expect("fits");
            let report = sim.run(&trace).expect("replay");
            assert_eq!(
                report.stats.shifts,
                analytic,
                "{} on {}",
                alg.name(),
                kernel.name()
            );
            assert_eq!(report.integrity_errors, 0);
        }
    }
}

/// Multi-port replay through the analytic model matches the device
/// model's own nearest-port bookkeeping (via a real Dbc).
#[test]
fn multi_port_model_matches_device() {
    let trace = Kernel::Histogram {
        bins: 32,
        samples: 400,
        seed: 3,
    }
    .trace();
    let graph = AccessGraph::from_trace(&trace);
    let placement = Hybrid::default().place(&graph);
    for ports in [1usize, 2, 4] {
        let config = DeviceConfig::builder()
            .domains_per_track(32)
            .tracks_per_dbc(32)
            .ports(ports)
            .build()
            .expect("valid");
        let model = MultiPortCost::new(config.port_layout().clone());
        let analytic = model.trace_cost(&placement, &trace).stats.shifts;
        let mut dbc = Dbc::new(&config);
        for a in trace.iter() {
            let off = placement.offset_of(a.item.index());
            if a.kind.is_write() {
                dbc.write(off, 1).expect("in range");
            } else {
                dbc.read(off).expect("in range");
            }
        }
        assert_eq!(dbc.stats().shifts, analytic, "{ports} ports");
    }
}

/// On exactly solvable instances, every heuristic is lower-bounded by
/// the DP optimum and the hybrid lands within a small gap.
#[test]
fn hybrid_is_near_optimal_on_small_instances() {
    use dwm_placement::graph::generators::clustered_graph;
    let mut total_opt = 0u64;
    let mut total_hybrid = 0u64;
    for seed in 0..6 {
        let g = clustered_graph(12, 3, 0.8, 0.2, 5, seed);
        let (_, opt) = optimal_placement(&g).expect("n=12 is exact-solvable");
        let hybrid = g.arrangement_cost(Hybrid::default().place(&g).offsets());
        assert!(hybrid >= opt);
        total_opt += opt;
        total_hybrid += hybrid;
    }
    // Aggregate gap under 15%.
    assert!(
        (total_hybrid as f64) <= 1.15 * total_opt as f64,
        "hybrid {total_hybrid} vs optimal {total_opt}"
    );
}

/// SPM allocation end-to-end: allocation fits, beats round-robin on
/// the kernel suite in aggregate, and cross-validates on the layout
/// simulator.
#[test]
fn spm_allocation_end_to_end() {
    let alloc = SpmAllocator::new(4, 16);
    let ports = PortLayout::single();
    let mut rr_total = 0u64;
    let mut anti_total = 0u64;
    for kernel in Kernel::suite() {
        let trace = kernel.trace();
        let rr = alloc.allocate_round_robin(trace.num_items()).expect("fits");
        let anti = alloc.allocate(&trace, &GroupedChainGrowth).expect("fits");
        rr_total += rr.trace_cost(&trace, &ports).0.shifts;
        anti_total += anti.trace_cost(&trace, &ports).0.shifts;

        let config = DeviceConfig::builder()
            .dbcs(4)
            .domains_per_track(16)
            .tracks_per_dbc(32)
            .build()
            .expect("valid");
        let mut sim = SpmSimulator::with_layout(&config, &anti).expect("geometry");
        let report = sim.run(&trace).expect("replay");
        assert_eq!(
            report.stats.shifts,
            anti.trace_cost(&trace, &ports).0.shifts
        );
        assert_eq!(report.integrity_errors, 0);
    }
    assert!(
        anti_total < rr_total,
        "anti-affinity {anti_total} did not beat round-robin {rr_total}"
    );
}

/// Latency/energy projection is monotone in shift count for a fixed
/// access mix — fewer shifts always means faster and cheaper.
#[test]
fn projection_is_monotone_in_shifts() {
    let trace = Kernel::Fft { n: 32, block: 1 }.trace();
    let graph = AccessGraph::from_trace(&trace);
    let model = SinglePortCost::new();
    let projection = CostProjection::new(&DeviceConfig::default());
    let naive = model
        .trace_cost(&Placement::identity(graph.num_items()), &trace)
        .stats;
    let tuned = model
        .trace_cost(&Hybrid::default().place(&graph), &trace)
        .stats;
    assert!(tuned.shifts < naive.shifts);
    assert!(projection.latency(&tuned).total_cycles() < projection.latency(&naive).total_cycles());
    assert!(projection.energy(&tuned).total_pj() < projection.energy(&naive).total_pj());
}

/// Trace text round-trip composes with the whole pipeline.
#[test]
fn trace_io_pipeline() {
    use dwm_placement::trace::io;
    let original = Kernel::Lu { n: 16 }.trace();
    let text = io::to_text(&original);
    let reloaded = io::from_text(&text).expect("parse");
    assert_eq!(reloaded, original);
    let graph = AccessGraph::from_trace(&reloaded);
    let placement = Hybrid::default().place(&graph);
    assert_eq!(placement.num_items(), 16);
}
