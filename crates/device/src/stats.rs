/// Running counters of device activity.
///
/// Collected by [`Dbc`](crate::Dbc) and by the simulator crate; the
/// analytic cost models in `dwm-core` produce the same `shifts` figure,
/// which the cross-validation test relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShiftStats {
    /// Total single-domain shift steps (summed over accesses, not
    /// multiplied by track count).
    pub shifts: u64,
    /// Number of read accesses served.
    pub reads: u64,
    /// Number of write accesses served.
    pub writes: u64,
    /// Accesses that needed no shifting (tape already aligned).
    pub aligned_hits: u64,
    /// Largest single-access shift distance observed.
    pub max_shift: u64,
}

dwm_foundation::json_struct!(ShiftStats {
    shifts,
    reads,
    writes,
    aligned_hits,
    max_shift
});

impl ShiftStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        ShiftStats::default()
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean shift distance per access; zero when no accesses occurred.
    pub fn mean_shift(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.shifts as f64 / n as f64
        }
    }

    /// Records one access of `dist` shift steps.
    pub fn record(&mut self, dist: u64, is_write: bool) {
        self.shifts += dist;
        if is_write {
            self.writes += 1;
        } else {
            self.reads += 1;
        }
        if dist == 0 {
            self.aligned_hits += 1;
        }
        self.max_shift = self.max_shift.max(dist);
    }

    /// Merges another counter set into this one (`max_shift` takes the
    /// maximum of the two).
    pub fn merge(&mut self, other: &ShiftStats) {
        self.shifts += other.shifts;
        self.reads += other.reads;
        self.writes += other.writes;
        self.aligned_hits += other.aligned_hits;
        self.max_shift = self.max_shift.max(other.max_shift);
    }
}

impl std::ops::AddAssign for ShiftStats {
    fn add_assign(&mut self, rhs: ShiftStats) {
        self.merge(&rhs);
    }
}

impl std::fmt::Display for ShiftStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shifts over {} accesses (mean {:.2}, max {}, {} aligned)",
            self.shifts,
            self.accesses(),
            self.mean_shift(),
            self.max_shift,
            self.aligned_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_all_fields() {
        let mut s = ShiftStats::new();
        s.record(3, false);
        s.record(0, true);
        s.record(7, false);
        assert_eq!(s.shifts, 10);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.aligned_hits, 1);
        assert_eq!(s.max_shift, 7);
        assert_eq!(s.accesses(), 3);
        assert!((s.mean_shift() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_shift_of_empty_is_zero() {
        assert_eq!(ShiftStats::new().mean_shift(), 0.0);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ShiftStats::new();
        a.record(5, false);
        let mut b = ShiftStats::new();
        b.record(9, true);
        a += b;
        assert_eq!(a.shifts, 14);
        assert_eq!(a.max_shift, 9);
        assert_eq!(a.accesses(), 2);
    }

    #[test]
    fn display_mentions_shifts_and_accesses() {
        let mut s = ShiftStats::new();
        s.record(4, false);
        let text = s.to_string();
        assert!(text.contains("4 shifts"));
        assert!(text.contains("1 accesses"));
    }
}
