//! Deterministic pseudo-random generation.
//!
//! [`Rng`] is xoshiro256\*\* seeded through SplitMix64 — the standard
//! pairing recommended by the xoshiro authors: SplitMix64 expands a
//! 64-bit seed into a full, well-mixed 256-bit state, and
//! xoshiro256\*\* generates from it. The implementation is pinned
//! in-tree so the stream for a given seed can never change underneath
//! an experiment (a `rand` version bump would silently re-roll every
//! synthetic workload in the paper reproduction).
//!
//! The API mirrors the parts of `rand` the workspace used:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::shuffle`], and [`Rng::choose`], plus the [`Zipf`]
//! distribution helper shared by the trace generators.

use std::ops::{Range, RangeInclusive};

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Also useful on its own for deriving independent sub-seeds from a
/// master seed (the property-test harness does exactly that).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable, deterministic xoshiro256\*\* generator.
///
/// # Example
///
/// ```
/// use dwm_foundation::rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(7);
/// let a: u32 = rng.gen();
/// let mut again = Rng::seed_from_u64(7);
/// assert_eq!(a, again.gen::<u32>());
/// let d = rng.gen_range(0..6) + 1;
/// assert!((1..=6).contains(&d));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full state is derived from `seed` via
    /// SplitMix64. Same seed → same stream, on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of [`Rng::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value of `T` over its full domain (`[0, 1)` for
    /// floats), in the style of `rand`'s `Standard` distribution.
    #[inline]
    pub fn gen<T: Rand>(&mut self) -> T {
        T::rand(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform value in `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, like `rand`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform value in `[0, bound)` without modulo bias (Lemire's
    /// multiply-and-reject method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from an empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.bounded_u64(slice.len() as u64) as usize])
        }
    }

    /// An index into `weights` chosen with probability proportional to
    /// its (nonnegative) weight. Returns `None` if the total weight is
    /// zero or not finite.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            u -= w;
            if u < 0.0 {
                return Some(i);
            }
        }
        Some(weights.len() - 1) // rounding fell off the end
    }
}

/// Types [`Rng::gen`] can produce over their natural uniform domain.
pub trait Rand: Sized {
    /// Draws one uniform value.
    fn rand(rng: &mut Rng) -> Self;
}

macro_rules! impl_rand_int {
    ($($t:ty => $from:ident),+ $(,)?) => {$(
        impl Rand for $t {
            #[inline]
            fn rand(rng: &mut Rng) -> Self {
                rng.$from() as $t
            }
        }
    )+};
}

impl_rand_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

impl Rand for bool {
    #[inline]
    fn rand(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Rand for f64 {
    #[inline]
    fn rand(rng: &mut Rng) -> Self {
        rng.next_f64()
    }
}

impl Rand for f32 {
    #[inline]
    fn rand(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full 64-bit domain
                }
                lo.wrapping_add(rng.bounded_u64(span as u64) as $t)
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Zipf-distributed ranks: rank `i` (0-based) is drawn with probability
/// proportional to `1 / (i + 1)^exponent`.
///
/// Sampling inverts an explicit CDF with binary search, so results are
/// exactly reproducible and construction is `O(n)`.
///
/// # Example
///
/// ```
/// use dwm_foundation::rng::{Rng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = Rng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with the given skew
    /// exponent (0 = uniform, ≈1 = classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (the constructor rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len`.
    #[inline]
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream_is_pinned() {
        // First outputs of xoshiro256** seeded via SplitMix64(0) — a
        // regression anchor: if these change, every seeded workload in
        // the workspace changes.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first[0], 0x99EC_5F36_CB75_F2B4);
        assert_eq!(first[1], 0xBF6E_1F78_4956_452A);
        assert_eq!(first[2], 0x1A5F_849D_4933_E6E0);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            Rng::seed_from_u64(1).next_u64(),
            Rng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let b = rng.gen_range(b'a'..=b'c');
            assert!((b'a'..=b'c').contains(&b));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_extremes_and_frequency() {
        let mut rng = Rng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(7).shuffle(&mut a);
        Rng::seed_from_u64(7).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let mut c = a.clone();
        Rng::seed_from_u64(8).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Rng::seed_from_u64(13);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&xs).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = Rng::seed_from_u64(17);
        assert_eq!(rng.choose_weighted(&[0.0, 0.0]), None);
        let mut counts = [0usize; 3];
        for _ in 0..9000 {
            counts[rng.choose_weighted(&[1.0, 2.0, 6.0]).unwrap()] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        assert!((900..1100).contains(&counts[0]), "counts {counts:?}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(50, 1.0);
        let mut rng = Rng::seed_from_u64(19);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[40]);
        // Rank 0 should carry roughly 1/H(50) ≈ 22% of the mass.
        assert!(counts[0] > 3500, "rank-0 count {}", counts[0]);
    }

    #[test]
    fn bounded_u64_is_unbiased_at_the_edges() {
        let mut rng = Rng::seed_from_u64(23);
        for _ in 0..100 {
            assert_eq!(rng.bounded_u64(1), 0);
            assert!(rng.bounded_u64(3) < 3);
        }
    }
}
