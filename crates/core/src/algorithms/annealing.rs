use dwm_foundation::Rng;

use dwm_graph::AccessGraph;

use crate::algorithms::chain::ChainGrowth;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Simulated annealing over item-swap moves.
///
/// A strong stochastic comparator: starts from the [`ChainGrowth`]
/// solution and explores swaps of two items' offsets with the classic
/// Metropolis acceptance rule and geometric cooling. Cost deltas are
/// computed incrementally from the two items' incident edges, so each
/// move is `O(deg(a) + deg(b))` rather than `O(E)`.
///
/// Deterministic for a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor applied every `iterations / 100` moves.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SimulatedAnnealing {
    /// Default-tuned annealer with the given seed.
    pub fn new(seed: u64) -> Self {
        SimulatedAnnealing {
            iterations: 20_000,
            initial_temperature: 50.0,
            cooling: 0.95,
            seed,
        }
    }

    /// Sets the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Cost change of swapping the offsets of items `a` and `b`.
    fn swap_delta(graph: &AccessGraph, placement: &Placement, a: usize, b: usize) -> i64 {
        let (pa, pb) = (placement.offset_of(a) as i64, placement.offset_of(b) as i64);
        let mut delta = 0i64;
        for (v, w) in graph.neighbors(a) {
            if v == b {
                continue; // the (a,b) edge distance is unchanged by a swap
            }
            let pv = placement.offset_of(v) as i64;
            delta += w as i64 * ((pb - pv).abs() - (pa - pv).abs());
        }
        for (v, w) in graph.neighbors(b) {
            if v == a {
                continue;
            }
            let pv = placement.offset_of(v) as i64;
            delta += w as i64 * ((pa - pv).abs() - (pb - pv).abs());
        }
        delta
    }
}

impl PlacementAlgorithm for SimulatedAnnealing {
    fn name(&self) -> String {
        "annealing".into()
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        let n = graph.num_items();
        if n < 2 {
            return Placement::identity(n);
        }
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut current = ChainGrowth.place(graph);
        let mut current_cost = graph.arrangement_cost(current.offsets()) as i64;
        let mut best = current.clone();
        let mut best_cost = current_cost;

        let mut temperature = self.initial_temperature.max(f64::MIN_POSITIVE);
        let cool_every = (self.iterations / 100).max(1);

        for step in 0..self.iterations {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let delta = Self::swap_delta(graph, &current, a, b);
            let accept = delta <= 0 || {
                let p = (-(delta as f64) / temperature).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                current.swap_items(a, b);
                current_cost += delta;
                if current_cost < best_cost {
                    best_cost = current_cost;
                    best = current.clone();
                }
            }
            if step % cool_every == cool_every - 1 {
                temperature = (temperature * self.cooling).max(1e-9);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, two_cluster_graph};

    #[test]
    fn swap_delta_matches_recomputation() {
        let g = kernel_graph();
        let mut p = ChainGrowth.place(&g);
        let before = g.arrangement_cost(p.offsets()) as i64;
        for (a, b) in [(0usize, 3usize), (1, 5), (2, 4)] {
            let delta = SimulatedAnnealing::swap_delta(&g, &p, a, b);
            p.swap_items(a, b);
            let after = g.arrangement_cost(p.offsets()) as i64;
            assert_eq!(after - before, delta, "delta mismatch for swap {a},{b}");
            p.swap_items(a, b); // restore
        }
    }

    #[test]
    fn never_worse_than_its_chain_growth_start() {
        let g = two_cluster_graph();
        let start = g.arrangement_cost(ChainGrowth.place(&g).offsets());
        let annealed = g.arrangement_cost(SimulatedAnnealing::new(7).place(&g).offsets());
        assert!(annealed <= start);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = kernel_graph();
        let a = SimulatedAnnealing::new(3).with_iterations(2000).place(&g);
        let b = SimulatedAnnealing::new(3).with_iterations(2000).place(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graphs_short_circuit() {
        for n in 0..2 {
            let g = AccessGraph::with_items(n);
            assert_eq!(SimulatedAnnealing::new(1).place(&g), Placement::identity(n));
        }
    }

    #[test]
    fn zero_iterations_returns_start() {
        let g = kernel_graph();
        let p = SimulatedAnnealing::new(1).with_iterations(0).place(&g);
        assert_eq!(p, ChainGrowth.place(&g));
    }
}
