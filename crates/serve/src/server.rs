//! The daemon: [`ServeConfig`], [`start`], and [`ServeHandle`].
//!
//! This binds the transport-agnostic [`Engine`] (or, with
//! `cluster > 1`, the consistent-hashing [`Cluster`] front) onto the
//! [`net::Server`] epoll event loop. Backpressure semantics come from
//! `net`: when the handler queue is full the server answers `503`
//! rather than letting work pile up; slow header writers are cut off
//! with `408`; on shutdown it stops accepting, finishes in-flight
//! requests, flushes staged responses, and closes. The daemon adds one
//! transport-level endpoint of its own, `POST /admin/drain`, which
//! flips a flag the process owner (the CLI's `serve drain`-initiated
//! loop) polls via [`ServeHandle::drain_requested`] to begin a
//! graceful shutdown from the outside.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dwm_foundation::net::{self, Request, Response, ServerStats};
use dwm_foundation::par;

use crate::cluster::Cluster;
use crate::engine::{Engine, EngineConfig};

/// Environment variable overriding the default listen address.
pub const ADDR_ENV: &str = "DWM_SERVE_ADDR";

/// Default listen address when neither the config nor [`ADDR_ENV`]
/// says otherwise.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7077";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (port 0 picks a free
    /// port — tests use this).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accept-queue depth; beyond this, connections get `503`.
    pub queue_capacity: usize,
    /// Solve-cache entry budget (0 disables memoization).
    pub cache_capacity: usize,
    /// Streaming-session budget (0 = unlimited); the least-recently-
    /// used session gives way when the budget is exhausted.
    pub session_capacity: usize,
    /// Idle time after which a session expires (zero = never).
    pub session_ttl: Duration,
    /// Whether `quality:"best"` solves enqueue background tier-2
    /// upgrades (`--no-upgrades` turns this off).
    pub upgrades: bool,
    /// Engine shards behind the consistent-hash front (`--cluster N`).
    /// 1 (the default) serves from a single unlabeled engine; values
    /// above 1 split the solve cache into disjoint per-shard slices.
    pub cluster: usize,
    /// Slow-header cutoff: a connection sitting on a partial request
    /// longer than this is answered `408` and closed. Idle keep-alive
    /// connections are exempt.
    pub read_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: std::env::var(ADDR_ENV).unwrap_or_else(|_| DEFAULT_ADDR.to_owned()),
            workers: par::num_threads(),
            queue_capacity: 128,
            cache_capacity: 1024,
            session_capacity: 64,
            session_ttl: Duration::from_secs(600),
            upgrades: true,
            cluster: 1,
            read_deadline: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    /// A config listening on an OS-assigned loopback port — what tests
    /// and benches use to avoid clashing with a real daemon.
    pub fn ephemeral() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeConfig::default()
        }
    }
}

/// A running daemon: the transport handle plus its engine(s).
pub struct ServeHandle {
    server: net::ServerHandle,
    engine: Arc<Engine>,
    cluster: Option<Arc<Cluster>>,
    drain: Arc<AtomicBool>,
}

impl ServeHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The engine, for inspecting cache/request counters in-process.
    /// With `cluster > 1` this is shard 0 (the session/error owner);
    /// use [`cluster`](Self::cluster) for the full shard set.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The cluster front, when running with `cluster > 1`.
    pub fn cluster(&self) -> Option<&Arc<Cluster>> {
        self.cluster.as_ref()
    }

    /// Whether a `POST /admin/drain` request has arrived. The process
    /// owner polls this and calls [`shutdown`](Self::shutdown) when it
    /// flips — the handler itself never tears the server down, so the
    /// drain response is always delivered first.
    pub fn drain_requested(&self) -> bool {
        self.drain.load(Ordering::Acquire)
    }

    /// Transport counters (accepted/rejected/handled).
    pub fn stats(&self) -> &ServerStats {
        self.server.stats()
    }

    /// Begins a graceful shutdown: stop accepting, drain the queue,
    /// finish in-flight requests. Returns immediately; use
    /// [`join`](Self::join) to wait for completion.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Waits for every server thread to exit.
    pub fn join(self) {
        self.server.join();
    }
}

/// Starts the daemon described by `config`.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: ServeConfig) -> io::Result<ServeHandle> {
    let engine_config = EngineConfig {
        cache_capacity: config.cache_capacity,
        session_capacity: config.session_capacity,
        session_ttl: config.session_ttl,
        upgrades: config.upgrades,
        shard: None,
    };
    let (engine, cluster): (Arc<Engine>, Option<Arc<Cluster>>) = if config.cluster > 1 {
        let cluster = Arc::new(Cluster::new(config.cluster, engine_config));
        (Arc::clone(&cluster.shards()[0]), Some(cluster))
    } else {
        (Arc::new(Engine::with_config(engine_config)), None)
    };
    let drain = Arc::new(AtomicBool::new(false));

    let handler_engine = Arc::clone(&engine);
    let handler_cluster = cluster.clone();
    let handler_drain = Arc::clone(&drain);
    let server = net::Server::start(
        net::ServerConfig {
            addr: config.addr,
            workers: config.workers.max(1),
            queue_capacity: config.queue_capacity.max(1),
            shards: 0,
            read_deadline: config.read_deadline,
        },
        move |req| {
            if req.path == "/admin/drain" {
                return admin_drain(req, &handler_drain);
            }
            match &handler_cluster {
                Some(cluster) => cluster.handle(req),
                None => handler_engine.handle(req),
            }
        },
    )?;
    Ok(ServeHandle {
        server,
        engine,
        cluster,
        drain,
    })
}

/// `POST /admin/drain`: flips the drain flag and acknowledges. The
/// acknowledgement goes out before the owner (polling
/// [`ServeHandle::drain_requested`]) starts the shutdown, so clients
/// always see the response.
fn admin_drain(req: &Request, drain: &AtomicBool) -> Response {
    if req.method != "POST" {
        return Response::text(405, "drain requires POST\n");
    }
    drain.store(true, Ordering::Release);
    Response::json(200, r#"{"draining":true}"#)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConn;

    #[test]
    fn daemon_serves_health_over_loopback_and_drains_on_shutdown() {
        let handle = start(ServeConfig {
            workers: 2,
            cache_capacity: 16,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let addr = handle.local_addr();

        let mut conn = ClientConn::connect(addr).unwrap();
        let resp = conn.get("/health").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body_str().unwrap(),
            r#"{"status":"ok","service":"dwm-serve"}"#
        );

        let solve = conn.post_json("/solve", r#"{"ids":[0,1,0,2,1]}"#).unwrap();
        assert_eq!(solve.status, 200);
        assert_eq!(handle.engine().cache().stats().entries, 1);

        handle.shutdown();
        handle.join();
    }

    #[test]
    fn admin_drain_flips_the_flag_without_killing_the_connection() {
        let handle = start(ServeConfig::ephemeral()).unwrap();
        assert!(!handle.drain_requested());
        let mut conn = ClientConn::connect(handle.local_addr()).unwrap();
        let not_post = conn.get("/admin/drain").unwrap();
        assert_eq!(not_post.status, 405);
        assert!(!handle.drain_requested());
        let resp = conn.post_json("/admin/drain", "{}").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_str().unwrap(), r#"{"draining":true}"#);
        assert!(handle.drain_requested());
        // The connection that asked is still usable until the owner
        // acts on the flag.
        assert_eq!(conn.get("/health").unwrap().status, 200);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn clustered_daemon_serves_identical_bodies() {
        let handle = start(ServeConfig {
            cluster: 4,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let single = start(ServeConfig::ephemeral()).unwrap();
        let mut a = ClientConn::connect(handle.local_addr()).unwrap();
        let mut b = ClientConn::connect(single.local_addr()).unwrap();
        for body in [
            r#"{"ids":[0,1,0,2,1]}"#,
            r#"{"ids":[5,4,3,2,1,0,5,4]}"#,
            "not json",
        ] {
            let ra = a.post_json("/solve", body).unwrap();
            let rb = b.post_json("/solve", body).unwrap();
            assert_eq!(ra.status, rb.status);
            assert_eq!(ra.body, rb.body);
        }
        assert!(handle.cluster().is_some());
        assert_eq!(handle.cluster().unwrap().shard_count(), 4);
        handle.shutdown();
        single.shutdown();
        handle.join();
        single.join();
    }

    #[test]
    fn ephemeral_config_binds_port_zero() {
        let cfg = ServeConfig::ephemeral();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        let handle = start(cfg).unwrap();
        assert_ne!(handle.local_addr().port(), 0);
        handle.shutdown();
        handle.join();
    }
}
