use crate::config::DeviceConfig;
use crate::error::DeviceError;
use crate::port::PortLayout;
use crate::shift::nearest_port_plan;
use crate::stats::ShiftStats;
use crate::track::Track;

/// A domain-block cluster: `W` tracks shifting in lockstep, storing one
/// `W`-bit word per domain offset.
///
/// The DBC is the unit the placement algorithms target: word offsets
/// within a DBC are the "positions" of the linear-arrangement problem.
/// Reads and writes go through the configured [`PortLayout`] under the
/// nearest-port policy, shifting the whole cluster as needed and
/// recording shift counts and wear.
///
/// # Example
///
/// ```
/// use dwm_device::{DeviceConfig, Dbc};
///
/// let config = DeviceConfig::builder()
///     .domains_per_track(16)
///     .tracks_per_dbc(8)
///     .build()?;
/// let mut dbc = Dbc::new(&config);
/// dbc.write(3, 0x5A)?;
/// dbc.write(12, 0xA5)?;
/// assert_eq!(dbc.read(3)?, 0x5A);
/// assert_eq!(dbc.read(12)?, 0xA5);
/// assert!(dbc.stats().shifts > 0);
/// # Ok::<(), dwm_device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dbc {
    tracks: Vec<Track>,
    ports: PortLayout,
    words: usize,
    displacement: i64,
    stats: ShiftStats,
    /// Wear: single-domain steps, per physical domain boundary crossing
    /// is uniform across the track, so we track steps per track; the
    /// interesting wear figure for DWM is total steps, already in
    /// `stats`. Per-word write counts capture endurance of write ports.
    write_counts: Vec<u64>,
}

dwm_foundation::json_struct!(Dbc {
    tracks,
    ports,
    words,
    displacement,
    stats,
    write_counts
});

impl Dbc {
    /// Creates a zero-filled DBC from a device configuration.
    pub fn new(config: &DeviceConfig) -> Self {
        let words = config.words_per_dbc();
        let padding = words; // enough for any displacement either way
        Dbc {
            tracks: (0..config.tracks_per_dbc())
                .map(|_| Track::new(words, padding))
                .collect(),
            ports: config.port_layout().clone(),
            words,
            displacement: 0,
            stats: ShiftStats::new(),
            write_counts: vec![0; words],
        }
    }

    /// Number of addressable words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits (= number of tracks).
    pub fn width(&self) -> usize {
        self.tracks.len()
    }

    /// Current tape displacement.
    pub fn displacement(&self) -> i64 {
        self.displacement
    }

    /// The port layout used by this DBC.
    pub fn ports(&self) -> &PortLayout {
        &self.ports
    }

    /// Activity counters accumulated so far.
    pub fn stats(&self) -> &ShiftStats {
        &self.stats
    }

    /// Per-word write counts (endurance proxy for the write ports).
    pub fn write_counts(&self) -> &[u64] {
        &self.write_counts
    }

    /// Resets counters (content and displacement are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = ShiftStats::new();
        self.write_counts.iter_mut().for_each(|c| *c = 0);
    }

    fn check_offset(&self, offset: usize) -> Result<(), DeviceError> {
        if offset >= self.words {
            Err(DeviceError::OffsetOutOfRange {
                offset,
                capacity: self.words,
            })
        } else {
            Ok(())
        }
    }

    /// Aligns `offset` with its nearest port, returning the shift
    /// distance taken.
    fn align(&mut self, offset: usize) -> u64 {
        let plan = nearest_port_plan(&self.ports, self.displacement, offset);
        for track in &mut self.tracks {
            track.shift_to(plan.displacement);
        }
        self.displacement = plan.displacement;
        plan.distance
    }

    /// Reads the word at `offset`, shifting as needed.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OffsetOutOfRange`] if `offset` is beyond
    /// the data region.
    pub fn read(&mut self, offset: usize) -> Result<u64, DeviceError> {
        self.check_offset(offset)?;
        let dist = self.align(offset);
        self.stats.record(dist, false);
        let mut word = 0u64;
        for (bit, track) in self.tracks.iter().enumerate() {
            if track.bit(offset) {
                word |= 1 << bit;
            }
        }
        Ok(word)
    }

    /// Writes `word` at `offset`, shifting as needed.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OffsetOutOfRange`] if `offset` is beyond
    /// the data region, or [`DeviceError::WordTooWide`] if `word` has
    /// significant bits above the track count.
    pub fn write(&mut self, offset: usize, word: u64) -> Result<(), DeviceError> {
        self.check_offset(offset)?;
        let width = self.width();
        if width < 64 && (word >> width) != 0 {
            return Err(DeviceError::WordTooWide {
                bits: 64 - word.leading_zeros(),
                width,
            });
        }
        let dist = self.align(offset);
        self.stats.record(dist, true);
        for (bit, track) in self.tracks.iter_mut().enumerate() {
            track.set_bit(offset, word & (1 << bit) != 0);
        }
        self.write_counts[offset] += 1;
        Ok(())
    }

    /// Shift distance the next access to `offset` would incur, without
    /// performing it.
    pub fn peek_distance(&self, offset: usize) -> Result<u64, DeviceError> {
        self.check_offset(offset)?;
        Ok(nearest_port_plan(&self.ports, self.displacement, offset).distance)
    }

    /// Fault-injection hook: physically displaces the domain train by
    /// `delta` positions, modelling a detected shift slip.
    ///
    /// The model assumes a position sensor (guard bits) so the
    /// controller learns the faulty position; the *next* access then
    /// implicitly pays the extra distance to re-align — the repair cost
    /// surfaces in that access's shift count, and data is never
    /// silently misread. Track wear from the slip motion itself is
    /// counted; access statistics are not (no access happened).
    pub fn inject_displacement_error(&mut self, delta: i64) {
        let target = self.displacement + delta;
        for track in &mut self.tracks {
            track.shift_to(target);
        }
        self.displacement = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(l: usize, w: usize, ports: usize) -> DeviceConfig {
        DeviceConfig::builder()
            .domains_per_track(l)
            .tracks_per_dbc(w)
            .ports(ports)
            .build()
            .unwrap()
    }

    #[test]
    fn read_after_write_round_trips_all_offsets() {
        let mut dbc = Dbc::new(&config(16, 16, 1));
        for o in 0..16 {
            dbc.write(o, (o as u64 * 7 + 1) & 0xFFFF).unwrap();
        }
        for o in 0..16 {
            assert_eq!(dbc.read(o).unwrap(), (o as u64 * 7 + 1) & 0xFFFF);
        }
    }

    #[test]
    fn out_of_range_offset_is_rejected() {
        let mut dbc = Dbc::new(&config(8, 8, 1));
        assert!(matches!(
            dbc.read(8),
            Err(DeviceError::OffsetOutOfRange { offset: 8, .. })
        ));
        assert!(matches!(
            dbc.write(99, 0),
            Err(DeviceError::OffsetOutOfRange { offset: 99, .. })
        ));
    }

    #[test]
    fn wide_word_is_rejected() {
        let mut dbc = Dbc::new(&config(8, 4, 1));
        assert!(matches!(
            dbc.write(0, 0x10),
            Err(DeviceError::WordTooWide { width: 4, .. })
        ));
        dbc.write(0, 0x0F).unwrap();
    }

    #[test]
    fn shift_counts_match_single_port_model() {
        // Single port at position 0: distance = |previous offset − next|.
        let mut dbc = Dbc::new(&config(16, 8, 1));
        dbc.read(5).unwrap(); // 5 from rest
        dbc.read(5).unwrap(); // 0
        dbc.read(9).unwrap(); // 4
        dbc.read(0).unwrap(); // 9
        assert_eq!(dbc.stats().shifts, 5 + 4 + 9);
        assert_eq!(dbc.stats().aligned_hits, 1);
        assert_eq!(dbc.stats().max_shift, 9);
    }

    #[test]
    fn two_ports_reduce_shift_count_on_far_jumps() {
        // Alternating far accesses: one port pays the full span every
        // time; two ports serve each end locally.
        let seq: Vec<usize> = (0..16).flat_map(|_| [0usize, 31]).collect();
        let mut one = Dbc::new(&config(32, 8, 1));
        let mut two = Dbc::new(&config(32, 8, 2));
        for &o in &seq {
            one.read(o).unwrap();
            two.read(o).unwrap();
        }
        assert!(two.stats().shifts < one.stats().shifts);
    }

    #[test]
    fn write_counts_track_endurance() {
        let mut dbc = Dbc::new(&config(8, 8, 1));
        dbc.write(2, 1).unwrap();
        dbc.write(2, 2).unwrap();
        dbc.write(3, 3).unwrap();
        assert_eq!(dbc.write_counts()[2], 2);
        assert_eq!(dbc.write_counts()[3], 1);
        assert_eq!(dbc.write_counts()[0], 0);
    }

    #[test]
    fn peek_distance_matches_following_access() {
        let mut dbc = Dbc::new(&config(32, 8, 2));
        for &o in &[3usize, 17, 30, 1] {
            let predicted = dbc.peek_distance(o).unwrap();
            let before = dbc.stats().shifts;
            dbc.read(o).unwrap();
            assert_eq!(dbc.stats().shifts - before, predicted);
        }
    }

    #[test]
    fn injected_slip_is_paid_by_next_access() {
        let mut dbc = Dbc::new(&config(16, 8, 1));
        dbc.read(5).unwrap(); // aligned at 5, cost 5
        dbc.inject_displacement_error(2);
        // Next access to 5 must undo the slip: distance 2, data intact.
        dbc.write(5, 0x3).unwrap();
        assert_eq!(dbc.stats().shifts, 5 + 2);
        assert_eq!(dbc.read(5).unwrap(), 0x3);
    }

    #[test]
    fn injected_slip_wears_tracks_without_access_stats() {
        let mut dbc = Dbc::new(&config(16, 8, 1));
        dbc.inject_displacement_error(-3);
        assert_eq!(dbc.stats().accesses(), 0);
        assert_eq!(dbc.stats().shifts, 0);
        assert_eq!(dbc.displacement(), -3);
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut dbc = Dbc::new(&config(8, 8, 1));
        dbc.write(4, 9).unwrap();
        dbc.reset_stats();
        assert_eq!(dbc.stats().accesses(), 0);
        assert_eq!(dbc.write_counts()[4], 0);
        assert_eq!(dbc.read(4).unwrap(), 9);
    }
}
