//! `dwmplace` — command-line front end for the DWM placement toolkit.
//!
//! See [`commands::USAGE`] or run `dwmplace help`.
//!
//! Exit codes: 0 success, 1 internal error, 2 usage error, 3 I/O
//! error, 4 malformed input file.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::from(commands::CliError::USAGE);
        }
    };
    // Global --threads N caps the parallel workers for every command
    // (equivalent to DWM_THREADS=N; --threads 1 forces sequential).
    // The override lives for the whole process, so the guard is leaked.
    match parsed.opt_num("threads", 0usize) {
        Ok(0) => {}
        Ok(n) => std::mem::forget(dwm_foundation::par::override_threads(n)),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::from(commands::CliError::USAGE);
        }
    }
    let code = match commands::dispatch(&parsed) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.code)
        }
    };
    // Global --obs switch: after any command, dump the metric registry
    // as JSON to stderr so stdout stays machine-parseable.
    if parsed.switch("obs") {
        eprintln!(
            "{}",
            dwm_foundation::obs::dump_json(&[dwm_foundation::obs::global()]).to_pretty()
        );
    }
    code
}
