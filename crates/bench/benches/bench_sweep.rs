//! F4/F5: cost-model replay across tape lengths and port counts, plus
//! the parallel sweep (one hybrid-pipeline cell per workload, fanned
//! over the `dwm_foundation::par` workers).

use dwm_bench::{markov_fixture, suite_fixture};
use dwm_core::cost::{CostModel, MultiPortCost, SinglePortCost};
use dwm_core::{Hybrid, PlacementAlgorithm};
use dwm_foundation::bench::{black_box, Harness};
use dwm_foundation::par;

fn main() {
    let mut h = Harness::from_env("sweep");
    for l in [16usize, 64, 256] {
        let (trace, graph) = markov_fixture(l);
        let placement = Hybrid::default().place(&graph);
        let model = SinglePortCost::new();
        h.bench(&format!("replay_tape_length/{l}"), || {
            model.trace_cost(black_box(&placement), black_box(&trace))
        });
    }
    let (trace, graph) = markov_fixture(64);
    let placement = Hybrid::default().place(&graph);
    for ports in [1usize, 2, 4, 8] {
        let model = MultiPortCost::evenly_spaced(ports, 64);
        h.bench(&format!("replay_ports/{ports}"), || {
            model.trace_cost(black_box(&placement), &trace)
        });
    }
    // The F4/F5-style sweep the experiment bins actually run: place and
    // replay every suite kernel. Cells are independent, so this is the
    // sequential-vs-parallel comparison the CI gate tracks.
    let suite = suite_fixture();
    let model = SinglePortCost::new();
    h.bench_threads("suite_hybrid_sweep", || {
        par::par_map(&suite, |(_, trace, graph)| {
            let placement = Hybrid::default().place(black_box(graph));
            model.trace_cost(&placement, trace).stats.shifts
        })
    });
    h.finish();
}
