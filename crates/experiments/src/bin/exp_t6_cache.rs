//! Experiment T6 (extension): shift-aware policies in a DWM cache.
//!
//! An 8-set × 8-way cache whose sets are DWM tapes serves block-address
//! workloads under three policy stacks:
//!
//! * `lru` — plain LRU, shift-oblivious (baseline);
//! * `sa-lru` — shift-aware LRU (victims within ±2 ways of the tape
//!   position);
//! * `sa+promo` — shift-aware LRU plus swap-toward-port promotion.
//!
//! The claim to check: shift-aware policies cut shifts/access
//! substantially while giving up almost no hit ratio.

use dwm_cache::{CacheConfig, DwmCache, PromotionPolicy, ReplacementPolicy};
use dwm_experiments::{Table, EXPERIMENT_SEED};
use dwm_trace::kernels::Kernel;
use dwm_trace::synth::{MarkovGen, SequentialGen, TraceGenerator, UniformGen, ZipfGen};
use dwm_trace::Trace;

fn workloads() -> Vec<(String, Trace)> {
    let mut w: Vec<(String, Trace)> = vec![
        (
            "zipf-512".into(),
            ZipfGen::new(512, EXPERIMENT_SEED).generate(40_000),
        ),
        (
            "markov-512".into(),
            MarkovGen::new(512, 16, EXPERIMENT_SEED).generate(40_000),
        ),
        (
            "uniform-512".into(),
            UniformGen::new(512, EXPERIMENT_SEED).generate(40_000),
        ),
        (
            "stream-512".into(),
            SequentialGen::new(512).generate(40_000),
        ),
    ];
    // A large matmul whose tile set exceeds the cache capacity.
    w.push((
        "matmul-16".into(),
        Kernel::MatMul { n: 16, block: 1 }.trace(),
    ));
    w
}

fn main() {
    println!("Table 6: DWM cache (8 sets x 8 ways), policy comparison\n");
    let mut t = Table::new([
        "workload",
        "lru hit%",
        "lru sh/acc",
        "sa-lru hit%",
        "sa-lru sh/acc",
        "sa+promo hit%",
        "sa+promo sh/acc",
        "shift reduction",
    ]);
    for (name, trace) in workloads() {
        let run = |config: CacheConfig| {
            let mut cache = DwmCache::new(config);
            cache.run_trace(&trace)
        };
        let lru = run(CacheConfig::new(8, 8).expect("valid"));
        let sa = run(CacheConfig::new(8, 8)
            .expect("valid")
            .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 }));
        let promo = run(CacheConfig::new(8, 8)
            .expect("valid")
            .with_replacement(ReplacementPolicy::ShiftAwareLru { window: 2 })
            .with_promotion(PromotionPolicy::SwapTowardPort));
        t.row([
            name,
            format!("{:.1}%", lru.hit_ratio() * 100.0),
            format!("{:.2}", lru.shifts_per_access()),
            format!("{:.1}%", sa.hit_ratio() * 100.0),
            format!("{:.2}", sa.shifts_per_access()),
            format!("{:.1}%", promo.hit_ratio() * 100.0),
            format!("{:.2}", promo.shifts_per_access()),
            format!(
                "{:.1}%",
                100.0 * (lru.shifts as f64 - promo.shifts.min(sa.shifts) as f64)
                    / lru.shifts.max(1) as f64
            ),
        ]);
    }
    t.print();
}
