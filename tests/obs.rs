//! Integration tests for the `dwm_foundation::obs` observability
//! substrate: concurrent-increment exactness (property-tested via the
//! seeded [`Checker`] harness), end-to-end solver instrumentation, and
//! the disabled-mode no-op guarantee.
//!
//! Tests that flip the process-global `DWM_OBS` override hold
//! [`obs::TEST_OVERRIDE_LOCK`] for their whole body so they serialize
//! against each other (the same pattern `par::override_threads` tests
//! use for `DWM_THREADS`).

use dwm_foundation::obs::{self, Registry};
use dwm_foundation::{require_eq, Checker, Rng};
use dwm_placement::prelude::*;
use dwm_placement::trace::kernels::Kernel;

/// Striped counters lose no increments under contention: for any
/// thread count and per-thread workload, the value is the exact sum.
#[test]
fn concurrent_counter_increments_are_exact() {
    let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
    let _on = obs::override_enabled(true);
    Checker::new("concurrent_counter_increments_are_exact")
        .cases(24)
        .run(
            |rng: &mut Rng| {
                let threads = rng.gen_range(1..=8usize);
                let per_thread: Vec<u64> =
                    (0..threads).map(|_| rng.gen_range(1..=2000u64)).collect();
                per_thread
            },
            |per_thread| {
                let registry = Registry::new();
                let counter = registry.counter("dwm_test_contended_total", "test");
                std::thread::scope(|scope| {
                    for &n in per_thread {
                        let counter = &counter;
                        scope.spawn(move || {
                            for _ in 0..n {
                                counter.inc();
                            }
                        });
                    }
                });
                require_eq!(counter.value(), per_thread.iter().sum::<u64>());
                Ok(())
            },
        );
}

/// Atomic histograms lose no samples under contention, and the
/// snapshot's percentiles stay within the recorded range.
#[test]
fn concurrent_histogram_records_are_exact() {
    let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
    let _on = obs::override_enabled(true);
    Checker::new("concurrent_histogram_records_are_exact")
        .cases(16)
        .run(
            |rng: &mut Rng| {
                let threads = rng.gen_range(2..=6usize);
                (0..threads)
                    .map(|_| {
                        (0..rng.gen_range(1..=500usize))
                            .map(|_| rng.gen_range(0..1_000_000u64))
                            .collect::<Vec<u64>>()
                    })
                    .collect::<Vec<_>>()
            },
            |samples| {
                let registry = Registry::new();
                let hist = registry.histogram("dwm_test_latency_ns", "test");
                std::thread::scope(|scope| {
                    for batch in samples {
                        let hist = &hist;
                        scope.spawn(move || {
                            for &v in batch {
                                hist.record(v);
                            }
                        });
                    }
                });
                let total: usize = samples.iter().map(Vec::len).sum();
                let snapshot = hist.snapshot();
                require_eq!(snapshot.count(), total as u64);
                let lo = *samples.iter().flatten().min().unwrap();
                let hi = *samples.iter().flatten().max().unwrap();
                let p50 = snapshot.percentile(0.5).unwrap();
                // Bucketed percentiles report a bucket upper bound, so
                // allow the coarse (~1.6%) bucket slack above `hi`.
                dwm_foundation::require!(
                    p50 >= lo && p50 <= hi + hi / 32 + 1,
                    "p50 {p50} outside recorded range [{lo}, {hi}]"
                );
                Ok(())
            },
        );
}

/// Running an instrumented solver advances its global counters: the
/// wiring is live end to end, not just registered.
#[test]
fn solver_runs_advance_global_metrics() {
    let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
    let _on = obs::override_enabled(true);
    let moves = obs::global().counter(
        "dwm_solver_annealing_moves_proposed_total",
        "Annealing move proposals",
    );
    let evals = obs::global().counter(
        "dwm_graph_eval_delta_evals_total",
        "Incremental delta evaluations",
    );
    let (moves_before, evals_before) = (moves.value(), evals.value());

    let trace = Kernel::MatMul { n: 6, block: 2 }.trace();
    let graph = AccessGraph::from_trace(&trace);
    let placement = SimulatedAnnealing::new(7).place(&graph);
    assert_eq!(placement.num_items(), graph.num_items());

    // Strictly greater: counters are monotonic and global, so
    // concurrent work elsewhere can only push them further up.
    assert!(moves.value() > moves_before, "annealing counter static");
    assert!(evals.value() > evals_before, "delta-eval counter static");
}

/// With the knob off, the same solver run moves nothing — the gated
/// hot paths really are no-ops, not just cheaper.
#[test]
fn disabled_mode_leaves_solver_metrics_untouched() {
    let _lock = obs::TEST_OVERRIDE_LOCK.lock().unwrap();
    let _off = obs::override_enabled(false);
    let moves = obs::global().counter(
        "dwm_solver_annealing_moves_proposed_total",
        "Annealing move proposals",
    );
    let before = moves.value();

    let trace = Kernel::Fft { n: 32, block: 1 }.trace();
    let graph = AccessGraph::from_trace(&trace);
    let placement = SimulatedAnnealing::new(11).place(&graph);
    assert_eq!(placement.num_items(), graph.num_items());

    // Only this binary's tests touch solver metrics in this process,
    // and all of them hold TEST_OVERRIDE_LOCK, so no concurrent bump.
    assert_eq!(moves.value(), before, "disabled counter moved");
}
