//! A small readiness-polling abstraction over the OS event queue.
//!
//! [`Poller`] wraps epoll on Linux — register an fd with an
//! [`Interest`], wait, get back [`PollEvent`]s keyed by caller-chosen
//! tokens. Both level- and edge-triggered registration are supported
//! (`Interest::edge`); the server core runs level-triggered for
//! connections and edge-triggered for its waker. On other platforms
//! [`Poller::new`] reports `io::ErrorKind::Unsupported` — the kqueue
//! backend is stub-gated here, which keeps the crate compiling
//! everywhere while the event-loop server stays Linux-only.

use std::io;
use std::time::Duration;

use super::sys;

/// Which readiness transitions a registration watches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable.
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
    /// Wake when the peer shuts down its write side (half-close);
    /// maps to `EPOLLRDHUP`.
    pub rdhup: bool,
    /// Edge-triggered: report each readiness transition once instead
    /// of while the condition holds.
    pub edge: bool,
}

impl Interest {
    /// Readable, with half-close detection (the common accept-side
    /// registration).
    pub fn readable() -> Self {
        Interest {
            readable: true,
            rdhup: true,
            ..Interest::default()
        }
    }

    /// Writable only (flushing a blocked response).
    pub fn writable() -> Self {
        Interest {
            writable: true,
            ..Interest::default()
        }
    }
}

/// One readiness event from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token supplied at registration.
    pub token: u64,
    /// The fd is readable (or has pending error/EOF to read out).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up (error, full close, or `rdhup` half-close).
    pub hangup: bool,
}

/// Internal event buffer size per `wait` call.
const WAIT_BATCH: usize = 256;

#[cfg(target_os = "linux")]
mod backend {
    use super::*;
    use sys::linux as ll;

    /// The epoll-backed poller.
    #[derive(Debug)]
    pub struct Poller {
        epfd: i32,
    }

    impl Poller {
        pub(super) fn create() -> io::Result<Poller> {
            Ok(Poller {
                epfd: ll::epoll_create()?,
            })
        }

        pub(super) fn ctl(
            &self,
            op: i32,
            fd: i32,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            let mut events = 0u32;
            if interest.readable {
                events |= ll::EPOLLIN;
            }
            if interest.writable {
                events |= ll::EPOLLOUT;
            }
            if interest.rdhup {
                events |= ll::EPOLLRDHUP;
            }
            if interest.edge {
                events |= ll::EPOLLET;
            }
            ll::epoll_control(self.epfd, op, fd, events, token)
        }

        pub(super) const ADD: i32 = ll::EPOLL_CTL_ADD;
        pub(super) const MOD: i32 = ll::EPOLL_CTL_MOD;

        pub(super) fn del(&self, fd: i32) -> io::Result<()> {
            ll::epoll_control(self.epfd, ll::EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(super) fn wait_into(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 0.4 ms deadline does not spin at 0 ms.
                Some(d) => (d.as_nanos().div_ceil(1_000_000)).min(i32::MAX as u128) as i32,
            };
            let mut buf = [ll::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = ll::epoll_pwait(self.epfd, &mut buf, timeout_ms)?;
            for ev in &buf[..n] {
                // Copy out of the possibly-packed struct before use.
                let (events, data) = (ev.events, ev.data);
                out.push(PollEvent {
                    token: data,
                    readable: events & (ll::EPOLLIN | ll::EPOLLERR) != 0,
                    writable: events & ll::EPOLLOUT != 0,
                    hangup: events & (ll::EPOLLHUP | ll::EPOLLRDHUP | ll::EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            ll::close_fd(self.epfd);
        }
    }

    /// eventfd-backed cross-thread waker.
    #[derive(Debug)]
    pub struct Waker {
        fd: i32,
    }

    impl Waker {
        pub(super) fn create() -> io::Result<Waker> {
            Ok(Waker {
                fd: ll::eventfd_new()?,
            })
        }

        pub(super) fn fd(&self) -> i32 {
            self.fd
        }

        pub(super) fn wake_impl(&self) {
            ll::eventfd_wake(self.fd);
        }

        pub(super) fn drain_impl(&self) {
            ll::eventfd_drain(self.fd);
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            ll::close_fd(self.fd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    use super::*;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness polling requires Linux (kqueue backend stub-gated)",
        )
    }

    /// Stub poller for non-Linux targets.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        pub(super) fn create() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub(super) fn ctl(
            &self,
            _op: i32,
            _fd: i32,
            _token: u64,
            _interest: Interest,
        ) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) const ADD: i32 = 0;
        pub(super) const MOD: i32 = 1;

        pub(super) fn del(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }

        pub(super) fn wait_into(
            &self,
            _out: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            Err(unsupported())
        }
    }

    /// Stub waker for non-Linux targets.
    #[derive(Debug)]
    pub struct Waker;

    impl Waker {
        pub(super) fn create() -> io::Result<Waker> {
            Err(unsupported())
        }

        pub(super) fn fd(&self) -> i32 {
            -1
        }

        pub(super) fn wake_impl(&self) {}

        pub(super) fn drain_impl(&self) {}
    }
}

/// OS readiness queue: register fds with an [`Interest`], then [`wait`]
/// for [`PollEvent`]s. epoll on Linux; `Unsupported` elsewhere.
///
/// [`wait`]: Poller::wait
#[derive(Debug)]
pub struct Poller {
    inner: backend::Poller,
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    ///
    /// `io::ErrorKind::Unsupported` off Linux; otherwise the
    /// `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: backend::Poller::create()?,
        })
    }

    /// Registers `fd` under `token`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. already registered).
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.ctl(backend::Poller::ADD, fd, token, interest)
    }

    /// Replaces the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure.
    pub fn reregister(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.ctl(backend::Poller::MOD, fd, token, interest)
    }

    /// Removes `fd` from the poller.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_ctl` failure (e.g. not registered).
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        self.inner.del(fd)
    }

    /// Appends ready events to `out` (does not clear it), waiting at
    /// most `timeout` (`None` = forever). Interrupted waits return
    /// normally with no events.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_wait` failure.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.wait_into(out, timeout)
    }
}

/// Cross-thread wakeup for a [`Poller`] loop: worker threads call
/// [`wake`](Waker::wake) after publishing a completion, which makes
/// the loop's current (or next) `wait` return. Backed by an `eventfd`
/// registered edge-triggered in the loop's poller.
#[derive(Debug)]
pub struct Waker {
    inner: backend::Waker,
}

impl Waker {
    /// Creates a waker.
    ///
    /// # Errors
    ///
    /// `io::ErrorKind::Unsupported` off Linux; otherwise the
    /// `eventfd` failure.
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            inner: backend::Waker::create()?,
        })
    }

    /// The fd to register in the owning loop's poller.
    pub fn fd(&self) -> i32 {
        self.inner.fd()
    }

    /// Rings the waker; cheap and safe from any thread.
    pub fn wake(&self) {
        self.inner.wake_impl();
    }

    /// Drains pending wakeups so the eventfd can ring again (called by
    /// the loop when it sees the waker token).
    pub fn drain(&self) {
        self.inner.drain_impl();
    }
}
