//! The program representation: arrays, loop variables, affine index
//! expressions, and a builder for loop nests.

use dwm_foundation::json::{field, FromJson, JsonError, Object, ToJson, Value};

/// Identifier of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

dwm_foundation::json_newtype!(ArrayId);

/// Identifier of a loop variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopVar(pub usize);

dwm_foundation::json_newtype!(LoopVar);

/// An affine (plus modulo) index expression:
/// `Σ coeff_k · var_k + constant`, optionally reduced `mod m`.
///
/// Modulo is applied last and makes strided wrap-around patterns
/// (banked FFT stages, circular buffers) expressible while keeping
/// evaluation trivial.
///
/// # Example
///
/// ```
/// use dwm_compile::ir::{AffineExpr, LoopVar};
///
/// let i = LoopVar(0);
/// let e = AffineExpr::var(i).scale(3).offset(1).modulo(8);
/// assert_eq!(e.evaluate(&[5]), Some(0)); // (3·5 + 1) mod 8
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineExpr {
    terms: Vec<(LoopVar, i64)>,
    constant: i64,
    modulus: Option<i64>,
}

dwm_foundation::json_struct!(AffineExpr {
    terms,
    constant,
    modulus
});

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            constant: c,
            modulus: None,
        }
    }

    /// The expression `v` (coefficient 1).
    pub fn var(v: LoopVar) -> Self {
        AffineExpr {
            terms: vec![(v, 1)],
            constant: 0,
            modulus: None,
        }
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(mut self, k: i64) -> Self {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self
    }

    /// Adds a constant offset.
    pub fn offset(mut self, c: i64) -> Self {
        self.constant += c;
        self
    }

    /// Adds another variable with coefficient `k`.
    pub fn plus_var(mut self, v: LoopVar, k: i64) -> Self {
        self.terms.push((v, k));
        self
    }

    /// Adds another whole expression (modulus of `other` must be unset).
    ///
    /// # Panics
    ///
    /// Panics if `other` carries a modulus (non-affine composition).
    pub fn plus(mut self, other: AffineExpr) -> Self {
        assert!(
            other.modulus.is_none(),
            "cannot add an expression that already has a modulus"
        );
        self.terms.extend(other.terms);
        self.constant += other.constant;
        self
    }

    /// Reduces the result modulo `m` (Euclidean, result in `[0, m)`).
    ///
    /// # Panics
    ///
    /// Panics if `m <= 0`.
    pub fn modulo(mut self, m: i64) -> Self {
        assert!(m > 0, "modulus must be positive");
        self.modulus = Some(m);
        self
    }

    /// Crate-internal view of the variable terms, used by the
    /// interpreter's unbound-variable check.
    pub(crate) fn terms_for_exec(&self) -> &[(LoopVar, i64)] {
        &self.terms
    }

    /// Evaluates with `env[v.0]` as the value of variable `v`; `None`
    /// if a variable index is out of the environment's range.
    pub fn evaluate(&self, env: &[i64]) -> Option<i64> {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * env.get(v.0).copied()?;
        }
        Some(match self.modulus {
            Some(m) => acc.rem_euclid(m),
            None => acc,
        })
    }
}

/// One node of a loop nest body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A counted loop `for var in lo..hi { body }`. Bounds are affine
    /// in the enclosing loop variables, so triangular nests work.
    Loop {
        /// The loop's induction variable.
        var: LoopVar,
        /// Inclusive lower bound.
        lo: AffineExpr,
        /// Exclusive upper bound.
        hi: AffineExpr,
        /// Loop body, executed in order.
        body: Vec<Node>,
    },
    /// A single array access.
    Access {
        /// The accessed array.
        array: ArrayId,
        /// Element index expression.
        index: AffineExpr,
        /// `true` for a store.
        write: bool,
    },
}

// Externally tagged by hand (both variants carry fields):
// `{"Loop":{"var":…,"lo":…,"hi":…,"body":[…]}}` |
// `{"Access":{"array":…,"index":…,"write":…}}`.
impl ToJson for Node {
    fn to_json(&self) -> Value {
        let (tag, fields) = match self {
            Node::Loop { var, lo, hi, body } => {
                let mut f = Object::new();
                f.insert("var", var.to_json());
                f.insert("lo", lo.to_json());
                f.insert("hi", hi.to_json());
                f.insert("body", body.to_json());
                ("Loop", f)
            }
            Node::Access {
                array,
                index,
                write,
            } => {
                let mut f = Object::new();
                f.insert("array", array.to_json());
                f.insert("index", index.to_json());
                f.insert("write", write.to_json());
                ("Access", f)
            }
        };
        let mut tagged = Object::new();
        tagged.insert(tag, Value::Obj(fields));
        Value::Obj(tagged)
    }
}

impl FromJson for Node {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let obj = v
            .as_object()
            .filter(|o| o.len() == 1)
            .ok_or_else(|| JsonError::expected("Node variant", v))?;
        let (tag, body) = obj.iter().next().expect("len-1 object has an entry");
        let fields = body
            .as_object()
            .ok_or_else(|| JsonError::expected("Node variant fields", body))?;
        match tag {
            "Loop" => Ok(Node::Loop {
                var: field(fields, "var")?,
                lo: field(fields, "lo")?,
                hi: field(fields, "hi")?,
                body: field(fields, "body")?,
            }),
            "Access" => Ok(Node::Access {
                array: field(fields, "array")?,
                index: field(fields, "index")?,
                write: field(fields, "write")?,
            }),
            other => Err(JsonError::decode(format!("unknown Node variant {other:?}"))),
        }
    }
}

/// A declared array: length in elements and elements per data item
/// (block granularity for placement).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of elements.
    pub len: usize,
    /// Elements per placement item.
    pub block: usize,
}

dwm_foundation::json_struct!(ArrayDecl { name, len, block });

impl ArrayDecl {
    /// Number of placement items this array occupies.
    pub fn items(&self) -> usize {
        self.len.div_ceil(self.block)
    }
}

/// A whole program: array declarations plus a top-level statement list.
///
/// Build with [`Program::array`], [`Program::loop_var`], and
/// [`Program::for_loop`] / [`BodyBuilder`]; run with
/// [`execute`](crate::exec::execute).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    arrays: Vec<ArrayDecl>,
    vars: Vec<String>,
    root: Vec<Node>,
}

dwm_foundation::json_struct!(Program { arrays, vars, root });

/// Builder handle for a loop body (or the program root).
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    nodes: &'a mut Vec<Node>,
}

impl BodyBuilder<'_> {
    /// Appends a read of `array[index]`.
    pub fn read(&mut self, array: ArrayId, index: AffineExpr) -> &mut Self {
        self.nodes.push(Node::Access {
            array,
            index,
            write: false,
        });
        self
    }

    /// Appends a write of `array[index]`.
    pub fn write(&mut self, array: ArrayId, index: AffineExpr) -> &mut Self {
        self.nodes.push(Node::Access {
            array,
            index,
            write: true,
        });
        self
    }

    /// Appends a nested loop `for var in lo..hi` with constant bounds.
    pub fn for_loop<F>(&mut self, var: LoopVar, lo: i64, hi: i64, build: F) -> &mut Self
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        self.for_loop_expr(
            var,
            AffineExpr::constant(lo),
            AffineExpr::constant(hi),
            build,
        )
    }

    /// Appends a nested loop with affine bounds (triangular nests).
    pub fn for_loop_expr<F>(
        &mut self,
        var: LoopVar,
        lo: AffineExpr,
        hi: AffineExpr,
        build: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        let mut body = Vec::new();
        build(&mut BodyBuilder { nodes: &mut body });
        self.nodes.push(Node::Loop { var, lo, hi, body });
        self
    }
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declares an array of `len` elements, `block` elements per
    /// placement item.
    ///
    /// # Panics
    ///
    /// Panics if `len` or `block` is zero.
    pub fn array(&mut self, name: &str, len: usize, block: usize) -> ArrayId {
        assert!(len > 0 && block > 0, "arrays must be non-degenerate");
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            len,
            block,
        });
        ArrayId(self.arrays.len() - 1)
    }

    /// Declares a loop variable.
    pub fn loop_var(&mut self, name: &str) -> LoopVar {
        self.vars.push(name.to_string());
        LoopVar(self.vars.len() - 1)
    }

    /// Appends a top-level loop with constant bounds.
    pub fn for_loop<F>(&mut self, var: LoopVar, lo: i64, hi: i64, build: F) -> &mut Self
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        let mut b = BodyBuilder {
            nodes: &mut self.root,
        };
        b.for_loop(var, lo, hi, build);
        self
    }

    /// Appends a top-level loop with affine bounds.
    pub fn for_loop_expr<F>(
        &mut self,
        var: LoopVar,
        lo: AffineExpr,
        hi: AffineExpr,
        build: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut BodyBuilder<'_>),
    {
        let mut b = BodyBuilder {
            nodes: &mut self.root,
        };
        b.for_loop_expr(var, lo, hi, build);
        self
    }

    /// Appends a top-level access (outside any loop).
    pub fn access(&mut self, array: ArrayId, index: AffineExpr, write: bool) -> &mut Self {
        self.root.push(Node::Access {
            array,
            index,
            write,
        });
        self
    }

    /// The array declarations.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Number of declared loop variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The top-level statement list.
    pub fn root(&self) -> &[Node] {
        &self.root
    }

    /// Total placement items across all arrays.
    pub fn total_items(&self) -> usize {
        self.arrays.iter().map(ArrayDecl::items).sum()
    }

    /// First placement item of `array` in the global item numbering.
    pub fn array_base(&self, array: ArrayId) -> usize {
        self.arrays[..array.0].iter().map(ArrayDecl::items).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_evaluation() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let e = AffineExpr::var(i).scale(4).plus_var(j, 1).offset(2);
        assert_eq!(e.evaluate(&[3, 1]), Some(15));
        assert_eq!(e.evaluate(&[3]), None, "j unbound");
        assert_eq!(AffineExpr::constant(7).evaluate(&[]), Some(7));
    }

    #[test]
    fn modulo_is_euclidean() {
        let i = LoopVar(0);
        let e = AffineExpr::var(i).offset(-5).modulo(4);
        assert_eq!(e.evaluate(&[2]), Some(1)); // (2−5) mod 4 = 1
    }

    #[test]
    #[should_panic(expected = "modulus must be positive")]
    fn zero_modulus_rejected() {
        let _ = AffineExpr::constant(1).modulo(0);
    }

    #[test]
    fn plus_composes_terms() {
        let i = LoopVar(0);
        let j = LoopVar(1);
        let e = AffineExpr::var(i).plus(AffineExpr::var(j).scale(2).offset(1));
        assert_eq!(e.evaluate(&[10, 3]), Some(17));
    }

    #[test]
    fn program_items_and_bases() {
        let mut p = Program::new();
        let a = p.array("a", 10, 4); // 3 items
        let b = p.array("b", 8, 2); // 4 items
        assert_eq!(p.arrays()[a.0].items(), 3);
        assert_eq!(p.array_base(a), 0);
        assert_eq!(p.array_base(b), 3);
        assert_eq!(p.total_items(), 7);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn zero_length_array_rejected() {
        Program::new().array("bad", 0, 1);
    }

    #[test]
    fn builder_constructs_nested_loops() {
        let mut p = Program::new();
        let a = p.array("a", 16, 1);
        let i = p.loop_var("i");
        let j = p.loop_var("j");
        p.for_loop(i, 0, 4, |outer| {
            outer.for_loop(j, 0, 4, |inner| {
                inner.read(a, AffineExpr::var(i).scale(4).plus_var(j, 1));
            });
        });
        assert_eq!(p.root().len(), 1);
        match &p.root()[0] {
            Node::Loop { body, .. } => match &body[0] {
                Node::Loop { body, .. } => assert_eq!(body.len(), 1),
                other => panic!("expected inner loop, got {other:?}"),
            },
            other => panic!("expected loop, got {other:?}"),
        }
    }
}
