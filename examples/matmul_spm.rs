//! Scratchpad allocation for blocked matrix multiply.
//!
//! Allocates the tiles of an 8×8 blocked matmul onto a 4-DBC × 16-word
//! DWM scratchpad with three strategies (round-robin, affinity
//! clustering, anti-affinity + projected-trace ordering), replays the
//! kernel on each, and validates the winner on the bit-level simulator.
//!
//! ```text
//! cargo run --release --example matmul_spm
//! ```

use dwm_placement::core::partition::Objective;
use dwm_placement::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = Kernel::MatMul { n: 8, block: 2 }.trace();
    println!("workload: {} — {}", trace.label(), trace.stats());

    let alloc = SpmAllocator::new(4, 16);
    let ports = PortLayout::single();

    let rr = alloc.allocate_round_robin(trace.num_items())?;
    let affinity =
        alloc.allocate_with_objective(&trace, &GroupedChainGrowth, Objective::MinimizeExternal)?;
    let anti = alloc.allocate(&trace, &GroupedChainGrowth)?;

    println!("\nstrategy          total shifts   mean/access");
    for (name, layout) in [
        ("round-robin", &rr),
        ("affinity", &affinity),
        ("anti-affinity", &anti),
    ] {
        let (stats, per_dbc) = layout.trace_cost(&trace, &ports);
        println!(
            "{name:<16}  {:>12}   {:>10.2}   (per-DBC: {})",
            stats.shifts,
            stats.mean_shift(),
            per_dbc
                .iter()
                .map(|s| s.shifts.to_string())
                .collect::<Vec<_>>()
                .join("/")
        );
    }

    // Validate the anti-affinity layout on the functional simulator.
    let config = DeviceConfig::builder()
        .dbcs(4)
        .domains_per_track(16)
        .tracks_per_dbc(32)
        .build()?;
    let mut sim = SpmSimulator::with_layout(&config, &anti)?;
    let report = sim.run(&trace)?;
    let (analytic, _) = anti.trace_cost(&trace, &ports);
    assert_eq!(report.stats.shifts, analytic.shifts);
    assert_eq!(report.integrity_errors, 0);
    println!("\nsimulator cross-check passed: {report}");
    Ok(())
}
