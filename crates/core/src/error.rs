use std::error::Error;
use std::fmt;

/// Errors produced by placement construction and allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// An offset vector was not a permutation of `0..n` (duplicate or
    /// out-of-range offset).
    NotAPermutation {
        /// First offending offset value.
        offset: usize,
        /// Number of items the placement must cover.
        items: usize,
    },
    /// The item set does not fit the available capacity.
    CapacityExceeded {
        /// Number of items to place.
        items: usize,
        /// Available word slots.
        capacity: usize,
    },
    /// The exact solver was asked for more items than its subset DP can
    /// enumerate.
    TooLargeForExact {
        /// Requested item count.
        items: usize,
        /// Hard limit of the solver.
        limit: usize,
    },
    /// A partition request was degenerate (zero parts, or parts cannot
    /// hold the items).
    InvalidPartition {
        /// Explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NotAPermutation { offset, items } => write!(
                f,
                "offsets are not a permutation of 0..{items}: offending offset {offset}"
            ),
            PlacementError::CapacityExceeded { items, capacity } => {
                write!(f, "{items} items exceed capacity of {capacity} words")
            }
            PlacementError::TooLargeForExact { items, limit } => write!(
                f,
                "{items} items exceed the exact solver's limit of {limit}"
            ),
            PlacementError::InvalidPartition { reason } => {
                write!(f, "invalid partition request: {reason}")
            }
        }
    }
}

impl Error for PlacementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = PlacementError::CapacityExceeded {
            items: 100,
            capacity: 64,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<PlacementError>();
    }
}
