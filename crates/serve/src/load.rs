//! Closed-loop loopback load harness (the `serve_load` binary's core).
//!
//! `clients` threads each hold one keep-alive connection and fire
//! requests back-to-back (closed loop: next request only after the
//! previous response). The workload mix is seeded and finite — a pool
//! of pre-rendered solve bodies drawn from Zipf and Markov generators —
//! so a run is reproducible and, crucially, *checkable*: every client
//! records the first response body seen per workload and flags any
//! later response that differs. A mismatch means the server broke its
//! determinism contract under concurrency.
//!
//! Latency is recorded per request into a
//! [`dwm_foundation::bench::Histogram`]; the report carries p50/p90/p99
//! and throughput.
//!
//! [`run_sessions`] is the streaming twin: instead of stateless
//! `/solve` calls, each client drives a set of long-lived sessions
//! through `POST /session/{id}/accesses` in fixed-size chunks and the
//! determinism check compares final placements across sessions that
//! replayed the same stream.
//!
//! # Deadline contracts
//!
//! With [`LoadConfig::quality`] / [`LoadConfig::deadline_us`] set, the
//! solve bodies switch from the legacy `algorithm` form to the tiered
//! form, and the harness additionally records the *server-side* time
//! each request took (from the `x-dwm-elapsed-us` response header) into
//! [`LoadReport::server_elapsed`]. Every tiered response whose
//! server-side time exceeded the requested budget counts as a
//! [`LoadReport::deadline_misses`] — the CI deadline-contract step
//! asserts this stays zero at `quality:"fast"`.
//!
//! # The C10k proof
//!
//! With [`LoadConfig::idle_conns`] set, the harness parks that many
//! extra keep-alive connections — each verified with a `/health`
//! round-trip — before the clock starts, leaves them untouched for the
//! whole run, and re-verifies every one afterwards on the same socket.
//! [`LoadReport::idle_held`] counts the survivors; a parked connection
//! the server shed under load counts as an error. This is the harness
//! side of the event loop's cheap-idle-connection promise (idle
//! keep-alive connections are exempt from the read deadline and cost
//! no worker thread), exercised at 10 000 connections in CI.
//!
//! [`wait_ready`] is the polling twin of a shell spin-wait: it retries
//! `GET /health` until the daemon answers 200 or the timeout lapses,
//! so scripts can start a daemon in the background and block on
//! readiness without sleeping a fixed amount.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dwm_foundation::bench::Histogram;
use dwm_foundation::json::parse;
use dwm_foundation::rng::Rng;
use dwm_trace::synth::{MarkovGen, TraceGenerator, ZipfGen};

use crate::client::ClientConn;
use crate::engine::ELAPSED_HEADER;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Distinct workloads in the pool.
    pub workloads: usize,
    /// Items per workload.
    pub items: usize,
    /// Accesses per workload.
    pub len: usize,
    /// Master seed for the workload pool and the per-client pick RNG.
    pub seed: u64,
    /// Algorithm requested from the server (legacy solve form; ignored
    /// when a tier knob below is set).
    pub algorithm: String,
    /// Tiered-solve quality knob (`"fast"`, `"balanced"`, `"best"`).
    /// Setting this (or `deadline_us`) switches the solve bodies to
    /// the tiered form; in session mode it is forwarded to the session
    /// create request so re-placement runs through the portfolio.
    pub quality: Option<String>,
    /// Tiered-solve deadline budget in microseconds. Responses whose
    /// server-side elapsed time exceeds it count as deadline misses.
    /// In session mode this is forwarded as `replace_deadline_us`.
    pub deadline_us: Option<u64>,
    /// Idle keep-alive connections parked for the whole run (the C10k
    /// proof). Each proves itself live with one `/health` round-trip
    /// before the clock starts, then just sits there; the active
    /// clients must be unaffected. 0 disables.
    pub idle_conns: usize,
}

impl LoadConfig {
    /// Defaults sized for a quick CI smoke run against `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        LoadConfig {
            addr,
            requests: 200,
            clients: 4,
            workloads: 8,
            items: 48,
            len: 2400,
            seed: 7,
            algorithm: "hybrid".to_owned(),
            quality: None,
            deadline_us: None,
            idle_conns: 0,
        }
    }
}

/// Outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests attempted.
    pub sent: u64,
    /// 2xx responses with consistent bodies.
    pub ok: u64,
    /// Transport failures or non-2xx responses.
    pub errors: u64,
    /// Responses whose body differed from the first one seen for the
    /// same workload — determinism violations.
    pub mismatches: u64,
    /// Responses the server reported as cache hits.
    pub hits: u64,
    /// Responses the server reported as cache misses.
    pub misses: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-request latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Server-side per-request time distribution (microseconds, from
    /// the `x-dwm-elapsed-us` header) — the side the deadline contract
    /// is written against. Empty in session mode.
    pub server_elapsed: Histogram,
    /// Responses whose server-side time exceeded
    /// [`LoadConfig::deadline_us`]. Always zero without a deadline.
    pub deadline_misses: u64,
    /// Idle keep-alive connections held open for the whole run — each
    /// verified live with a `/health` round-trip both before the clock
    /// started *and after the load finished* (a parked connection that
    /// silently died in between counts as an error instead).
    pub idle_held: u64,
}

impl LoadReport {
    /// Requests per second over the run.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.sent as f64 / secs
        } else {
            0.0
        }
    }

    /// Whether every request succeeded with a consistent body.
    pub fn all_ok(&self) -> bool {
        self.errors == 0 && self.mismatches == 0 && self.ok == self.sent
    }

    /// One-paragraph human summary.
    pub fn summary(&self) -> String {
        let pct = |q: f64| {
            self.latency
                .percentile(q)
                .map_or_else(|| "-".to_owned(), |ns| format!("{:.1}us", ns as f64 / 1e3))
        };
        let mut line = format!(
            "{} requests in {:.2}s ({:.0} req/s): {} ok, {} errors, {} mismatches, \
             {} hits / {} misses, latency p50 {} p90 {} p99 {}",
            self.sent,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.ok,
            self.errors,
            self.mismatches,
            self.hits,
            self.misses,
            pct(0.50),
            pct(0.90),
            pct(0.99),
        );
        if self.server_elapsed.count() > 0 {
            let server_pct = |q: f64| {
                self.server_elapsed
                    .percentile(q)
                    .map_or_else(|| "-".to_owned(), |us| format!("{us}us"))
            };
            line.push_str(&format!(
                ", server p50 {} p99 {}, {} deadline misses",
                server_pct(0.50),
                server_pct(0.99),
                self.deadline_misses,
            ));
        }
        if self.idle_held > 0 {
            line.push_str(&format!(
                ", {} idle connections held through the run",
                self.idle_held
            ));
        }
        line
    }
}

/// Renders the pool of solve request bodies for `config`.
///
/// Even-indexed workloads draw from a Zipf generator, odd ones from a
/// clustered Markov walk, each with a seed derived from the master
/// seed — a mix of skewed-hot and phase-local access patterns. With a
/// tier knob set the bodies take the tiered form (`quality` /
/// `deadline_us`) instead of the legacy `algorithm` form.
pub fn workload_bodies(config: &LoadConfig) -> Vec<String> {
    let prefix = solve_body_prefix(config);
    (0..config.workloads)
        .map(|k| {
            let seed = config.seed.wrapping_mul(1_000_003).wrapping_add(k as u64);
            let trace = if k % 2 == 0 {
                ZipfGen::new(config.items, seed).generate(config.len)
            } else {
                MarkovGen::new(config.items, 4, seed).generate(config.len)
            };
            let ids: Vec<String> = trace.iter().map(|a| a.item.index().to_string()).collect();
            format!(r#"{{{prefix}"ids":[{}]}}"#, ids.join(","))
        })
        .collect()
}

/// The knob fields preceding `"ids"` in a solve body: tier knobs when
/// any is set, the legacy `algorithm` field otherwise (the two are
/// mutually exclusive on the wire).
fn solve_body_prefix(config: &LoadConfig) -> String {
    if config.quality.is_none() && config.deadline_us.is_none() {
        return format!(r#""algorithm":"{}","#, config.algorithm);
    }
    let mut prefix = String::new();
    if let Some(quality) = &config.quality {
        prefix.push_str(&format!(r#""quality":"{quality}","#));
    }
    if let Some(deadline) = config.deadline_us {
        prefix.push_str(&format!(r#""deadline_us":{deadline},"#));
    }
    prefix
}

/// Runs the closed-loop load test and gathers the report.
///
/// # Errors
///
/// Fails only when a client cannot *connect*; request-level failures
/// are counted in the report instead.
pub fn run(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let bodies = workload_bodies(config);
    // First-seen response body per workload, for the determinism check.
    let reference: Vec<Mutex<Option<String>>> =
        (0..bodies.len()).map(|_| Mutex::new(None)).collect();

    let remaining = AtomicUsize::new(config.requests);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let deadline_misses = AtomicU64::new(0);
    let histograms: Vec<Mutex<Histogram>> = (0..config.clients.max(1))
        .map(|_| Mutex::new(Histogram::new()))
        .collect();
    let server_histograms: Vec<Mutex<Histogram>> = (0..config.clients.max(1))
        .map(|_| Mutex::new(Histogram::new()))
        .collect();

    // C10k proof: park the idle keep-alive connections first, each
    // verified live with one /health round-trip. They sit untouched
    // for the whole run — the event loop must hold them at zero cost
    // while the active clients below get full service.
    let mut idle = Vec::with_capacity(config.idle_conns);
    if config.idle_conns > 0 {
        dwm_foundation::net::raise_nofile_limit();
        for i in 0..config.idle_conns {
            let mut conn = ClientConn::connect(config.addr).map_err(|e| {
                std::io::Error::other(format!(
                    "idle connection {i}/{} failed to open: {e}",
                    config.idle_conns
                ))
            })?;
            let live = conn.get("/health").map(|r| r.is_success()).unwrap_or(false);
            if !live {
                return Err(std::io::Error::other(format!(
                    "idle connection {i}/{} failed its liveness probe",
                    config.idle_conns
                )));
            }
            idle.push(conn);
        }
    }

    // Connect the active clients before starting the clock.
    let mut conns = Vec::new();
    for _ in 0..config.clients.max(1) {
        conns.push(Some(ClientConn::connect(config.addr)?));
    }

    let started = Instant::now();
    std::thread::scope(|s| {
        for (c, conn) in conns.iter_mut().enumerate() {
            let bodies = &bodies;
            let reference = &reference;
            let remaining = &remaining;
            let ok = &ok;
            let errors = &errors;
            let mismatches = &mismatches;
            let hits = &hits;
            let misses = &misses;
            let deadline_misses = &deadline_misses;
            let histogram = &histograms[c];
            let server_histogram = &server_histograms[c];
            let mut conn = conn.take().expect("connection present");
            let mut rng = Rng::seed_from_u64(config.seed ^ (0x9E37 + c as u64));
            s.spawn(move || {
                loop {
                    // Claim one request slot; stop when the budget is
                    // spent.
                    if remaining
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    let w = rng.gen_range(0..bodies.len());
                    let sent_at = Instant::now();
                    let resp = conn.post_json("/solve", bodies[w].as_str());
                    let nanos = sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    histogram.lock().unwrap().record(nanos);
                    let Ok(resp) = resp else {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    if !resp.is_success() {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if let Some(us) = resp
                        .header(ELAPSED_HEADER)
                        .and_then(|v| v.parse::<u64>().ok())
                    {
                        server_histogram.lock().unwrap().record(us);
                        if config.deadline_us.is_some_and(|budget| us > budget) {
                            deadline_misses.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let Some(body) = resp.body_str() else {
                        errors.fetch_add(1, Ordering::Relaxed);
                        continue;
                    };
                    tally_cache_labels(body, hits, misses);
                    // Determinism check on the results portion: the
                    // "cache" field legitimately differs between the
                    // first (miss) and later (hit) responses.
                    let results = results_portion(body);
                    let mut slot = reference[w].lock().unwrap();
                    match slot.as_ref() {
                        None => {
                            *slot = Some(results);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(first) if *first == results => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Some(_) => {
                            mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    // The parked connections must have survived the load untouched:
    // each answers one more /health on the same keep-alive socket. A
    // dead one means the server shed idle connections under load.
    let mut idle_held = 0u64;
    let mut idle_errors = 0u64;
    for conn in &mut idle {
        match conn.get("/health") {
            Ok(r) if r.is_success() => idle_held += 1,
            _ => idle_errors += 1,
        }
    }
    drop(idle);

    let mut latency = Histogram::new();
    for h in &histograms {
        latency.merge(&h.lock().unwrap());
    }
    let mut server_elapsed = Histogram::new();
    for h in &server_histograms {
        server_elapsed.merge(&h.lock().unwrap());
    }
    Ok(LoadReport {
        sent: config.requests as u64,
        ok: ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed) + idle_errors,
        mismatches: mismatches.load(Ordering::Relaxed),
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        elapsed,
        latency,
        server_elapsed,
        deadline_misses: deadline_misses.load(Ordering::Relaxed),
        idle_held,
    })
}

/// Renders the per-stream access sequences for session-mode load:
/// the same Zipf/Markov mix as [`workload_bodies`], as raw id vectors.
/// Sessions are assigned streams round-robin, so with more sessions
/// than streams several sessions replay the *same* stream — the
/// determinism check compares their placements at the end.
pub fn session_streams(config: &LoadConfig) -> Vec<Vec<u32>> {
    (0..config.workloads)
        .map(|k| {
            let seed = config.seed.wrapping_mul(1_000_003).wrapping_add(k as u64);
            let trace = if k % 2 == 0 {
                ZipfGen::new(config.items, seed).generate(config.len)
            } else {
                MarkovGen::new(config.items, 4, seed).generate(config.len)
            };
            trace.iter().map(|a| a.item.index() as u32).collect()
        })
        .collect()
}

/// Accesses per ingest request in session mode.
pub const SESSION_CHUNK: usize = 256;

/// Session-mode load: opens `sessions` streaming sessions, streams
/// each its workload in [`SESSION_CHUNK`]-access chunks closed-loop
/// (clients own disjoint session subsets and round-robin over them),
/// and reports ingest latency percentiles. After the streams drain,
/// sessions that replayed the same stream must answer `GET
/// …/placement` byte-identically (minus the session id) — any
/// difference counts as a mismatch.
///
/// # Errors
///
/// Fails when a connection cannot be established or a session cannot
/// be created; ingest-level failures are counted in the report.
pub fn run_sessions(config: &LoadConfig, sessions: usize) -> std::io::Result<LoadReport> {
    let streams = session_streams(config);
    let chunk_bodies: Vec<Vec<String>> = streams
        .iter()
        .map(|stream| {
            stream
                .chunks(SESSION_CHUNK)
                .map(|chunk| {
                    let ids: Vec<String> = chunk.iter().map(u32::to_string).collect();
                    format!(r#"{{"ids":[{}]}}"#, ids.join(","))
                })
                .collect()
        })
        .collect();

    // A control connection creates every session up front, then
    // closes before any client connects: the server parks one worker
    // per live keep-alive connection, so holding the control
    // connection open across the streaming phase would starve the
    // clients on a daemon with few workers.
    let mut session_ids: Vec<(String, usize)> = Vec::new(); // (id, stream)
    {
        let mut create_body = String::from(r#"{"window":256,"migration_shifts_per_item":8"#);
        if let Some(quality) = &config.quality {
            create_body.push_str(&format!(r#","quality":"{quality}""#));
        }
        if let Some(deadline) = config.deadline_us {
            create_body.push_str(&format!(r#","replace_deadline_us":{deadline}"#));
        }
        create_body.push('}');
        let mut control = ClientConn::connect(config.addr)?;
        for k in 0..sessions {
            let resp = control.post_json("/session", create_body.as_str())?;
            let id = resp
                .body_str()
                .filter(|_| resp.is_success())
                .and_then(|b| parse(b).ok())
                .and_then(|v| v.as_object().and_then(|o| o.get("session").cloned()))
                .and_then(|v| v.as_str().map(str::to_owned))
                .ok_or_else(|| {
                    std::io::Error::other(format!("session create answered without an id ({k})"))
                })?;
            session_ids.push((id, k % streams.len()));
        }
    }

    let clients = config.clients.max(1).min(sessions.max(1));
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let sent = AtomicU64::new(0);
    let histograms: Vec<Mutex<Histogram>> =
        (0..clients).map(|_| Mutex::new(Histogram::new())).collect();
    let mut conns = Vec::new();
    for _ in 0..clients {
        conns.push(Some(ClientConn::connect(config.addr)?));
    }

    let started = Instant::now();
    std::thread::scope(|s| {
        for (c, conn) in conns.iter_mut().enumerate() {
            // Client c owns sessions c, c+clients, c+2·clients, …
            let owned: Vec<&(String, usize)> =
                session_ids.iter().skip(c).step_by(clients).collect();
            let chunk_bodies = &chunk_bodies;
            let ok = &ok;
            let errors = &errors;
            let sent = &sent;
            let histogram = &histograms[c];
            let mut conn = conn.take().expect("connection present");
            s.spawn(move || {
                // Round-robin chunk j over every owned session before
                // moving to chunk j+1 — all sessions progress together.
                let max_chunks = owned
                    .iter()
                    .map(|(_, w)| chunk_bodies[*w].len())
                    .max()
                    .unwrap_or(0);
                for j in 0..max_chunks {
                    for (id, w) in &owned {
                        let Some(body) = chunk_bodies[*w].get(j) else {
                            continue;
                        };
                        sent.fetch_add(1, Ordering::Relaxed);
                        let sent_at = Instant::now();
                        let resp =
                            conn.post_json(&format!("/session/{id}/accesses"), body.as_str());
                        let nanos = sent_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        histogram.lock().unwrap().record(nanos);
                        match resp {
                            Ok(r) if r.is_success() => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();

    // Determinism check: sessions that replayed the same stream must
    // hold identical placements (the body differs only in the id).
    // Fresh connection — the streaming ones have closed by now.
    let mut control = ClientConn::connect(config.addr)?;
    let mut mismatches = 0u64;
    let mut reference: Vec<Option<String>> = vec![None; streams.len()];
    for (id, w) in &session_ids {
        let Ok(resp) = control.get(&format!("/session/{id}/placement")) else {
            mismatches += 1;
            continue;
        };
        let Some(body) = resp.body_str().filter(|_| resp.is_success()) else {
            mismatches += 1;
            continue;
        };
        // Strip the leading `{"session":"s-…",` so only state remains.
        let state = body.split_once(',').map_or(body, |(_, rest)| rest);
        match &reference[*w] {
            None => reference[*w] = Some(state.to_owned()),
            Some(first) if first == state => {}
            Some(_) => mismatches += 1,
        }
    }

    let mut latency = Histogram::new();
    for h in &histograms {
        latency.merge(&h.lock().unwrap());
    }
    Ok(LoadReport {
        sent: sent.load(Ordering::Relaxed),
        ok: ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        mismatches,
        hits: 0,
        misses: 0,
        elapsed,
        latency,
        server_elapsed: Histogram::new(),
        deadline_misses: 0,
        idle_held: 0,
    })
}

/// Polls `GET /health` until the daemon answers 200 or `timeout`
/// lapses — the scripted replacement for spin-waiting on a freshly
/// started daemon. Returns how long readiness took.
///
/// # Errors
///
/// `TimedOut` when the daemon never became ready. A zero timeout
/// makes exactly one attempt (a fail-fast liveness probe).
pub fn wait_ready(addr: SocketAddr, timeout: Duration) -> std::io::Result<Duration> {
    let started = Instant::now();
    loop {
        if let Ok(resp) = ClientConn::connect(addr).and_then(|mut conn| conn.get("/health")) {
            if resp.is_success() {
                return Ok(started.elapsed());
            }
        }
        if started.elapsed() >= timeout {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "daemon at {addr} not ready within {:.1}s",
                    timeout.as_secs_f64()
                ),
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Extracts the `"results":…` suffix of a solve body — the part that
/// must be byte-identical across repeats (the `cache` prefix is not).
fn results_portion(body: &str) -> String {
    body.split_once(r#""results":"#)
        .map_or_else(|| body.to_owned(), |(_, rest)| rest.to_owned())
}

fn tally_cache_labels(body: &str, hits: &AtomicU64, misses: &AtomicU64) {
    let Ok(value) = parse(body) else { return };
    let Some(labels) = value.as_object().and_then(|o| o.get("cache")) else {
        return;
    };
    let Some(arr) = labels.as_array() else { return };
    for label in arr {
        // Legacy solves label with bare strings; tiered solves with
        // provenance objects carrying a "status" field.
        let status = label.as_str().or_else(|| {
            label
                .as_object()
                .and_then(|o| o.get("status"))
                .and_then(|v| v.as_str())
        });
        match status {
            Some("hit") => {
                hits.fetch_add(1, Ordering::Relaxed);
            }
            Some("miss") => {
                misses.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{start, ServeConfig};

    #[test]
    fn load_run_is_clean_and_mostly_cached() {
        let handle = start(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let config = LoadConfig {
            requests: 40,
            clients: 3,
            workloads: 4,
            items: 24,
            len: 600,
            ..LoadConfig::new(handle.local_addr())
        };
        let report = run(&config).unwrap();
        handle.shutdown();
        handle.join();

        assert!(report.all_ok(), "{}", report.summary());
        assert_eq!(report.sent, 40);
        // Once a workload is cached every later request hits; only the
        // racing first solves can miss, so at most clients × workloads
        // misses (and in practice far fewer).
        assert!(report.misses <= 12, "{}", report.summary());
        assert!(report.hits >= report.sent - 12, "{}", report.summary());
        assert_eq!(report.hits + report.misses, report.sent);
        assert_eq!(report.latency.count(), 40);
        assert!(report.rps() > 0.0);
        assert!(report.summary().contains("req/s"));
    }

    #[test]
    fn session_load_streams_and_matches_placements() {
        let handle = start(ServeConfig {
            workers: 2,
            session_capacity: 16,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let config = LoadConfig {
            clients: 3,
            workloads: 2,
            items: 24,
            len: 1200,
            ..LoadConfig::new(handle.local_addr())
        };
        // Four sessions over two streams: 0 and 2 replay stream 0,
        // 1 and 3 replay stream 1 — the placement cross-check runs.
        let report = run_sessions(&config, 4).unwrap();
        handle.shutdown();
        handle.join();

        assert!(report.all_ok(), "{}", report.summary());
        // ceil(1200 / 256) = 5 chunks per stream, times 4 sessions.
        assert_eq!(report.sent, 20);
        assert_eq!(report.latency.count(), 20);
        assert_eq!(report.hits + report.misses, 0);
    }

    #[test]
    fn tiered_load_meets_the_fast_deadline_contract() {
        let handle = start(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let config = LoadConfig {
            requests: 30,
            clients: 3,
            workloads: 3,
            items: 24,
            len: 600,
            quality: Some("fast".to_owned()),
            // Generous budget: tier 0 on a 24-item workload finishes in
            // well under a second even in debug builds.
            deadline_us: Some(1_000_000),
            ..LoadConfig::new(handle.local_addr())
        };
        let report = run(&config).unwrap();
        handle.shutdown();
        handle.join();

        assert!(report.all_ok(), "{}", report.summary());
        // Object-form cache labels are tallied like legacy strings.
        assert_eq!(report.hits + report.misses, report.sent);
        assert_eq!(report.server_elapsed.count(), 30);
        assert_eq!(report.deadline_misses, 0, "{}", report.summary());
        assert!(
            report.server_elapsed.percentile(0.99).unwrap() <= 1_000_000,
            "{}",
            report.summary()
        );
        assert!(report.summary().contains("deadline misses"));
    }

    #[test]
    fn tiered_session_load_forwards_knobs_and_matches_placements() {
        let handle = start(ServeConfig {
            workers: 2,
            session_capacity: 16,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let config = LoadConfig {
            clients: 2,
            workloads: 2,
            items: 24,
            len: 600,
            quality: Some("balanced".to_owned()),
            deadline_us: Some(500_000),
            ..LoadConfig::new(handle.local_addr())
        };
        // Sessions 0 and 2 replay stream 0, 1 and 3 stream 1: the
        // cross-check proves tiered re-placement is deterministic.
        let report = run_sessions(&config, 4).unwrap();
        handle.shutdown();
        handle.join();

        assert!(report.all_ok(), "{}", report.summary());
        assert_eq!(report.sent, 12); // ceil(600/256)=3 chunks × 4 sessions
    }

    #[test]
    fn idle_connections_survive_an_active_load_run() {
        let handle = start(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let config = LoadConfig {
            requests: 30,
            clients: 3,
            workloads: 3,
            items: 24,
            len: 600,
            idle_conns: 200,
            ..LoadConfig::new(handle.local_addr())
        };
        let report = run(&config).unwrap();
        handle.shutdown();
        handle.join();

        assert!(report.all_ok(), "{}", report.summary());
        assert_eq!(report.idle_held, 200, "{}", report.summary());
        // The parked connections never send requests, so the request
        // tally is untouched by them.
        assert_eq!(report.sent, 30);
        assert!(report.summary().contains("200 idle connections"));
    }

    #[test]
    fn wait_ready_answers_for_a_live_daemon_and_fails_fast_otherwise() {
        let handle = start(ServeConfig {
            workers: 1,
            ..ServeConfig::ephemeral()
        })
        .unwrap();
        let addr = handle.local_addr();
        let took = wait_ready(addr, Duration::from_secs(5)).unwrap();
        assert!(took < Duration::from_secs(5));
        handle.shutdown();
        handle.join();

        // The port is closed now: a zero timeout makes one attempt and
        // reports TimedOut instead of hanging.
        let err = wait_ready(addr, Duration::ZERO).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(err.to_string().contains("not ready"));
    }

    #[test]
    fn workload_bodies_render_the_requested_knob_form() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let legacy = workload_bodies(&LoadConfig::new(addr));
        assert!(legacy[0].starts_with(r#"{"algorithm":"hybrid","ids":["#));

        let tiered = workload_bodies(&LoadConfig {
            quality: Some("fast".to_owned()),
            deadline_us: Some(500),
            ..LoadConfig::new(addr)
        });
        assert!(tiered[0].starts_with(r#"{"quality":"fast","deadline_us":500,"ids":["#));
        // Same trace pool either way — only the knob prefix differs.
        assert_eq!(
            legacy[0].split_once(r#""ids":"#).map(|x| x.1.to_owned()),
            tiered[0].split_once(r#""ids":"#).map(|x| x.1.to_owned()),
        );

        let deadline_only = workload_bodies(&LoadConfig {
            deadline_us: Some(500),
            ..LoadConfig::new(addr)
        });
        assert!(deadline_only[0].starts_with(r#"{"deadline_us":500,"ids":["#));
    }

    #[test]
    fn workload_bodies_are_reproducible_and_mixed() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let a = workload_bodies(&LoadConfig::new(addr));
        let b = workload_bodies(&LoadConfig::new(addr));
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Distinct workloads render distinct bodies.
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() == a.len());
    }

    #[test]
    fn results_portion_strips_the_cache_prefix() {
        let hit = r#"{"cache":["hit"],"results":[{"cost":1}]}"#;
        let miss = r#"{"cache":["miss"],"results":[{"cost":1}]}"#;
        assert_eq!(results_portion(hit), results_portion(miss));
    }
}
