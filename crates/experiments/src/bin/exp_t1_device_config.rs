//! Experiment T1: the device-configuration table.
//!
//! Prints the DWM geometry/timing/energy parameters used throughout the
//! evaluation, plus derived storage-overhead figures per port count.

use dwm_device::DeviceConfig;
use dwm_experiments::Table;

fn main() {
    let base = DeviceConfig::default();
    println!("Table 1a: device parameters (defaults from the 2013-2015 DWM literature)\n");
    let mut params = Table::new(["parameter", "value"]);
    params.row([
        "domains per track (L)",
        &base.domains_per_track().to_string(),
    ]);
    params.row(["tracks per DBC (W)", &base.tracks_per_dbc().to_string()]);
    params.row(["words per DBC", &base.words_per_dbc().to_string()]);
    params.row([
        "shift latency",
        &format!("{} cycle(s)/domain", base.timing().shift_cycles),
    ]);
    params.row([
        "read / write latency",
        &format!(
            "{} / {} cycles",
            base.timing().read_cycles,
            base.timing().write_cycles
        ),
    ]);
    params.row(["clock period", &format!("{} ns", base.timing().clock_ns)]);
    params.row([
        "shift energy",
        &format!("{} pJ/track/domain", base.energy().shift_pj_per_track),
    ]);
    params.row([
        "read / write energy",
        &format!("{} / {} pJ", base.energy().read_pj, base.energy().write_pj),
    ]);
    params.print();

    println!("\nTable 1b: padding overhead vs. port count (64-domain tracks)\n");
    let mut overhead = Table::new(["ports", "padding domains", "storage efficiency"]);
    for ports in [1usize, 2, 4, 8] {
        let c = DeviceConfig::builder().ports(ports).build().expect("valid");
        overhead.row([
            ports.to_string(),
            c.overhead_domains().to_string(),
            format!("{:.1}%", c.storage_efficiency() * 100.0),
        ]);
    }
    overhead.print();
}
