//! Basic-block layout on a racetrack instruction memory.
//!
//! Builds a profile-weighted CFG, lays it out with program order vs.
//! hottest-edge chaining, and shows where the fetch shifts go.
//!
//! ```text
//! cargo run --release --example instruction_layout
//! ```

use dwm_placement::isa::{best_layout, chain_layout, BlockOrder, Cfg};

fn main() {
    let cfg = Cfg::random(32, 3, 7);
    println!(
        "CFG: {} blocks, {} instructions, {} edges\n",
        cfg.num_blocks(),
        cfg.total_len(),
        cfg.edges().len()
    );

    let program = BlockOrder::program_order(&cfg);
    let chained = chain_layout(&cfg);
    let best = best_layout(&cfg);

    println!("{:<16} {:>14}", "layout", "fetch shifts");
    for (name, layout) in [
        ("program-order", &program),
        ("chained", &chained),
        ("best+refine", &best),
    ] {
        println!("{:<16} {:>14}", name, layout.cost(&cfg));
    }

    // Show the hottest edge and whether the tuned layout made it a
    // fallthrough.
    let hottest = cfg
        .edges()
        .iter()
        .max_by_key(|e| e.frequency)
        .expect("CFG has edges");
    let from_end = best.start_of(hottest.from) + cfg.block_len(hottest.from);
    let to_start = best.start_of(hottest.to);
    println!(
        "\nhottest edge {}→{} (freq {}): distance {} on the tuned tape{}",
        hottest.from.0,
        hottest.to.0,
        hottest.frequency,
        (from_end as i64 - to_start as i64).abs(),
        if from_end == to_start {
            " — a free fallthrough"
        } else {
            ""
        }
    );
}
