//! Capacity-constrained graph partitioning for multi-DBC scratchpads.
//!
//! A scratchpad built from `k` DBCs of `L` words each holds `k·L`
//! items, but shifts only couple items *within* a DBC — the clusters
//! shift independently. Placement across a multi-DBC SPM therefore
//! decomposes into (1) partitioning the item set into `k` parts of at
//! most `L` items while minimizing the weight of *intra*-part tape
//! traffic spread and (2) ordering each part on its own tape.
//!
//! Step (1) here uses heaviest-edge greedy agglomeration (Kruskal-style
//! with a capacity cap) followed by Kernighan–Lin-style pairwise swap
//! refinement. The objective is to *maximize* the weight captured
//! inside parts with small diameter — equivalently, heavy edges should
//! not be split, and no part may overflow.
//!
//! Each refinement pass scores every cross-part swap in parallel
//! against the frozen pass-start state, then applies the improving
//! swaps best-first with sequential re-validation, so the result is
//! byte-identical at any `DWM_THREADS` worker count.

use dwm_foundation::par;
use dwm_graph::{AccessGraph, CsrGraph};

use crate::error::PlacementError;

/// An assignment of items to `k` parts with a per-part capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `part_of[item] = part index`.
    part_of: Vec<usize>,
    /// Items of each part, in ascending item order.
    parts: Vec<Vec<usize>>,
}

dwm_foundation::json_struct!(Partition { part_of, parts });

impl Partition {
    fn from_assignment(part_of: Vec<usize>, k: usize) -> Self {
        let mut parts = vec![Vec::new(); k];
        for (item, &p) in part_of.iter().enumerate() {
            parts[p].push(item);
        }
        Partition { part_of, parts }
    }

    /// Part index of `item`.
    pub fn part_of(&self, item: usize) -> usize {
        self.part_of[item]
    }

    /// Items of part `p`.
    pub fn part(&self, p: usize) -> &[usize] {
        &self.parts[p]
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.part_of.len()
    }

    /// Total weight of edges whose endpoints lie in different parts.
    ///
    /// Cross-part edges cost nothing in shifts (independent tapes), but
    /// a *lower* external weight means more of the traffic is available
    /// for intra-tape locality optimization, so this is the classic
    /// quality metric the refinement minimizes.
    pub fn external_weight(&self, graph: &AccessGraph) -> u64 {
        graph
            .edges()
            .filter(|e| self.part_of[e.u] != self.part_of[e.v])
            .map(|e| e.weight)
            .sum()
    }
}

/// What the partitioner optimizes.
///
/// On a multi-DBC scratchpad the tapes shift independently, so a
/// transition between items on *different* DBCs costs nothing — the
/// expensive traffic is the *internal* weight each tape must then
/// absorb as shifts. [`Objective::MinimizeInternal`] therefore spreads
/// temporally adjacent items across DBCs and is the right choice for
/// DWM SPM allocation ([`SpmAllocator`](crate::spm::SpmAllocator) uses
/// it). [`Objective::MinimizeExternal`] is the classic clustering
/// objective, appropriate when crossing parts is what costs (e.g.
/// banked memories with switch penalties); it is kept for comparison
/// and for the clustering experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Keep heavy edges inside parts (classic min-cut clustering).
    #[default]
    MinimizeExternal,
    /// Push heavy edges across parts (anti-affinity; right for
    /// independently shifting tapes).
    MinimizeInternal,
}

/// Capacity-constrained partitioner: greedy seeding plus KL-style swap
/// refinement, under either [`Objective`].
///
/// # Example
///
/// ```
/// use dwm_graph::generators::clustered_graph;
/// use dwm_core::partition::Partitioner;
///
/// let g = clustered_graph(24, 4, 0.9, 0.05, 8, 1);
/// let partition = Partitioner::new(4, 6).partition(&g)?;
/// assert_eq!(partition.num_parts(), 4);
/// // Every part respects its capacity.
/// for p in 0..4 {
///     assert!(partition.part(p).len() <= 6);
/// }
/// # Ok::<(), dwm_core::PlacementError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    /// Number of parts (DBCs).
    pub parts: usize,
    /// Capacity of each part (words per DBC).
    pub capacity: usize,
    /// Maximum refinement passes.
    pub refine_passes: usize,
    /// Optimization objective.
    pub objective: Objective,
}

impl Partitioner {
    /// A partitioner into `parts` parts of `capacity` items each, with
    /// the default clustering objective and refinement budget.
    pub fn new(parts: usize, capacity: usize) -> Self {
        Partitioner {
            parts,
            capacity,
            refine_passes: 10,
            objective: Objective::MinimizeExternal,
        }
    }

    /// Switches the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Partitions the graph's items.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::InvalidPartition`] when `parts == 0`
    /// or [`PlacementError::CapacityExceeded`] when
    /// `parts · capacity < num_items`.
    pub fn partition(&self, graph: &AccessGraph) -> Result<Partition, PlacementError> {
        let n = graph.num_items();
        if self.parts == 0 {
            return Err(PlacementError::InvalidPartition {
                reason: "zero parts requested".into(),
            });
        }
        if n > self.parts * self.capacity {
            return Err(PlacementError::CapacityExceeded {
                items: n,
                capacity: self.parts * self.capacity,
            });
        }

        // Freeze once; seeding and every refinement pass share the
        // flat CSR arrays.
        let csr = CsrGraph::freeze(graph);
        if self.objective == Objective::MinimizeInternal {
            return self.partition_minimize_internal(&csr);
        }

        // --- Phase 1: capacity-capped Kruskal agglomeration. ---
        // cluster_of[v]: current cluster id; clusters merge greedily on
        // heavy edges while the merged size fits one part.
        let mut cluster_of: Vec<usize> = (0..n).collect();
        let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        let mut edges: Vec<_> = graph.edges().collect();
        edges.sort_by_key(|e| (std::cmp::Reverse(e.weight), e.u, e.v));
        for e in edges {
            let (cu, cv) = (cluster_of[e.u], cluster_of[e.v]);
            if cu == cv || members[cu].len() + members[cv].len() > self.capacity {
                continue;
            }
            let moved = std::mem::take(&mut members[cv]);
            for &x in &moved {
                cluster_of[x] = cu;
            }
            members[cu].extend(moved);
        }

        // --- Phase 2: bin-pack clusters into parts, largest first. ---
        let mut clusters: Vec<Vec<usize>> = members.into_iter().filter(|m| !m.is_empty()).collect();
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        let mut load = vec![0usize; self.parts];
        let mut part_of = vec![0usize; n];
        for cluster in clusters {
            // First-fit-decreasing into the least-loaded part that fits.
            let target = (0..self.parts)
                .filter(|&p| load[p] + cluster.len() <= self.capacity)
                .min_by_key(|&p| (load[p], p))
                .ok_or_else(|| PlacementError::InvalidPartition {
                    reason: "bin packing failed despite sufficient total capacity; \
                             try a larger capacity or fewer parts"
                        .into(),
                })?;
            load[target] += cluster.len();
            for v in cluster {
                part_of[v] = target;
            }
        }

        // --- Phase 3: KL-style pairwise swap refinement. ---
        let mut partition = Partition::from_assignment(part_of, self.parts);
        self.refine(&csr, &mut partition);
        Ok(partition)
    }

    /// Anti-affinity seeding: items in descending degree order each go
    /// to the part where they add the least internal weight (ties to
    /// the least-loaded part), then swap refinement maximizes external
    /// weight.
    fn partition_minimize_internal(&self, csr: &CsrGraph) -> Result<Partition, PlacementError> {
        let n = csr.num_items();
        let mut items: Vec<usize> = (0..n).collect();
        items.sort_by_key(|&v| (std::cmp::Reverse(csr.degree(v)), v));
        let mut part_of = vec![usize::MAX; n];
        let mut load = vec![0usize; self.parts];
        for v in items {
            let target = (0..self.parts)
                .filter(|&p| load[p] < self.capacity)
                .min_by_key(|&p| {
                    let internal: u64 = csr
                        .neighbors(v)
                        .filter(|&(u, _)| part_of[u] == p)
                        .map(|(_, w)| w)
                        .sum();
                    (internal, load[p], p)
                })
                .ok_or_else(|| PlacementError::InvalidPartition {
                    reason: "no part with spare capacity".into(),
                })?;
            part_of[v] = target;
            load[target] += 1;
        }
        let mut partition = Partition::from_assignment(part_of, self.parts);
        self.refine(csr, &mut partition);
        Ok(partition)
    }

    /// External weight change of swapping the parts of `a` and `b`
    /// (which must be in different parts).
    fn swap_gain(csr: &CsrGraph, partition: &Partition, a: usize, b: usize) -> i64 {
        let (pa, pb) = (partition.part_of(a), partition.part_of(b));
        let mut delta = 0i64;
        let (vs, ws) = csr.neighbor_slices(a);
        for (&v, &w) in vs.iter().zip(ws) {
            let v = v as usize;
            if v == b {
                continue;
            }
            let pv = partition.part_of(v);
            delta += w as i64 * ((pb != pv) as i64 - (pa != pv) as i64);
        }
        let (vs, ws) = csr.neighbor_slices(b);
        for (&v, &w) in vs.iter().zip(ws) {
            let v = v as usize;
            if v == a {
                continue;
            }
            let pv = partition.part_of(v);
            delta += w as i64 * ((pa != pv) as i64 - (pb != pv) as i64);
        }
        delta
    }

    fn refine(&self, csr: &CsrGraph, partition: &mut Partition) {
        let n = partition.num_items();
        // MinimizeExternal accepts swaps with negative external-weight
        // delta; MinimizeInternal accepts positive ones (more external
        // weight = less internal).
        let sign = match self.objective {
            Objective::MinimizeExternal => 1,
            Objective::MinimizeInternal => -1,
        };
        // Metrics accumulate locally and flush after the pass loop.
        let (mut passes, mut applied) = (0u64, 0u64);
        let gain_hist = swap_gain_histogram();
        for _ in 0..self.refine_passes {
            passes += 1;
            // Score all candidate swaps against the frozen pass-start
            // state in parallel (scoring is the O(n²·d̄) hot loop), then
            // apply them sequentially best-gain-first, re-validating
            // each against the mutated state. Both phases are
            // deterministic, so the result is identical at any
            // `DWM_THREADS` setting.
            let rows: Vec<usize> = (0..n).collect();
            let mut candidates: Vec<(i64, usize, usize)> = par::par_map(&rows, |&a| {
                let mut improving = Vec::new();
                for b in (a + 1)..n {
                    if partition.part_of[a] == partition.part_of[b] {
                        continue;
                    }
                    let gain = sign * Self::swap_gain(csr, partition, a, b);
                    if gain < 0 {
                        improving.push((gain, a, b));
                    }
                }
                improving
            })
            .into_iter()
            .flatten()
            .collect();
            candidates.sort_unstable();

            let mut improved = false;
            for (_, a, b) in candidates {
                if partition.part_of[a] == partition.part_of[b] {
                    continue;
                }
                // Earlier applied swaps may have invalidated the
                // pass-start score; recheck before committing.
                let gain = sign * Self::swap_gain(csr, partition, a, b);
                if gain < 0 {
                    let (pa, pb) = (partition.part_of[a], partition.part_of[b]);
                    partition.part_of[a] = pb;
                    partition.part_of[b] = pa;
                    improved = true;
                    applied += 1;
                    gain_hist.record((-gain) as u64);
                }
            }
            if !improved {
                break;
            }
        }
        refine_passes_counter().add(passes);
        swaps_applied_counter().add(applied);
        *partition = Partition::from_assignment(
            std::mem::take(&mut partition.part_of),
            partition.parts.len(),
        );
    }
}

/// KL refinement passes executed across all partitioner runs.
pub(crate) fn refine_passes_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_kl_passes_total",
        "Kernighan-Lin refinement passes executed by the partitioner"
    )
}

/// KL swaps committed across all partitioner runs.
pub(crate) fn swaps_applied_counter() -> &'static dwm_foundation::obs::Counter {
    dwm_foundation::obs_counter!(
        "dwm_solver_kl_swaps_total",
        "Kernighan-Lin swaps committed during partition refinement"
    )
}

/// Distribution of committed KL swap gains (objective improvement per
/// swap, in edge-weight units).
pub(crate) fn swap_gain_histogram() -> &'static dwm_foundation::obs::Histogram {
    dwm_foundation::obs_histogram!(
        "dwm_solver_kl_swap_gain",
        "Objective improvement per committed Kernighan-Lin swap (edge-weight units)"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwm_graph::generators::{clustered_graph, random_graph};

    #[test]
    fn recovers_planted_clusters() {
        // 4 planted clusters of 6; partition into 4 parts of capacity 6
        // should capture almost all heavy intra-cluster weight.
        let g = clustered_graph(24, 4, 0.95, 0.02, 10, 3);
        let p = Partitioner::new(4, 6).partition(&g).unwrap();
        let external = p.external_weight(&g);
        let total = g.total_weight();
        assert!(
            (external as f64) < 0.25 * total as f64,
            "external {external} of {total}"
        );
    }

    #[test]
    fn respects_capacity() {
        let g = random_graph(30, 0.3, 5, 1);
        let p = Partitioner::new(5, 7).partition(&g).unwrap();
        for i in 0..5 {
            assert!(p.part(i).len() <= 7);
        }
        // Every item assigned exactly once.
        let covered: usize = (0..5).map(|i| p.part(i).len()).sum();
        assert_eq!(covered, 30);
    }

    #[test]
    fn rejects_overflow() {
        let g = random_graph(10, 0.5, 3, 2);
        assert!(matches!(
            Partitioner::new(2, 4).partition(&g),
            Err(PlacementError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn rejects_zero_parts() {
        let g = random_graph(4, 0.5, 3, 2);
        assert!(matches!(
            Partitioner::new(0, 4).partition(&g),
            Err(PlacementError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn swap_gain_matches_recomputation() {
        let g = random_graph(12, 0.5, 6, 8);
        let csr = CsrGraph::freeze(&g);
        let p = Partitioner::new(3, 4).partition(&g).unwrap();
        let mut q = p.clone();
        for a in 0..12 {
            for b in 0..12 {
                if a == b || p.part_of(a) == p.part_of(b) {
                    continue;
                }
                let before = q.external_weight(&g) as i64;
                let gain = Partitioner::swap_gain(&csr, &q, a, b);
                let (pa, pb) = (q.part_of[a], q.part_of[b]);
                q.part_of[a] = pb;
                q.part_of[b] = pa;
                let q2 = Partition::from_assignment(q.part_of.clone(), 3);
                assert_eq!(q2.external_weight(&g) as i64 - before, gain);
                q.part_of[a] = pa;
                q.part_of[b] = pb;
            }
        }
    }

    #[test]
    fn single_part_takes_everything() {
        let g = random_graph(8, 0.4, 3, 5);
        let p = Partitioner::new(1, 8).partition(&g).unwrap();
        assert_eq!(p.part(0).len(), 8);
        assert_eq!(p.external_weight(&g), 0);
    }

    #[test]
    fn identical_partition_at_any_worker_count() {
        use dwm_foundation::par::override_threads;
        let _l = crate::algorithms::test_support::PAR_TEST_LOCK
            .lock()
            .unwrap();
        for objective in [Objective::MinimizeExternal, Objective::MinimizeInternal] {
            let g = clustered_graph(30, 5, 0.8, 0.1, 8, 4);
            let partitioner = Partitioner::new(5, 6).with_objective(objective);
            let sequential = {
                let _g = override_threads(1);
                partitioner.partition(&g).unwrap()
            };
            let parallel = {
                let _g = override_threads(8);
                partitioner.partition(&g).unwrap()
            };
            assert_eq!(sequential, parallel, "{objective:?}");
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = AccessGraph::with_items(0);
        let p = Partitioner::new(2, 4).partition(&g).unwrap();
        assert_eq!(p.num_items(), 0);
        assert_eq!(p.num_parts(), 2);
    }
}
