use dwm_foundation::par;
use dwm_graph::{AccessGraph, CsrGraph};

use crate::algorithms::annealing::SimulatedAnnealing;
use crate::algorithms::chain::ChainGrowth;
use crate::algorithms::local_search::LocalSearch;
use crate::algorithms::PlacementAlgorithm;
use crate::placement::Placement;

/// Parallel multi-start wrapper around [`SimulatedAnnealing`].
///
/// Stochastic search quality varies a lot with the seed; the classic
/// remedy is to run several independently seeded restarts and keep the
/// best. The restarts are embarrassingly parallel, so they fan out over
/// the [`dwm_foundation::par`] workers: restart `i` runs with seed
/// `seed + i` and the winner is picked by `(cost, restart index)` —
/// byte-identical output at any `DWM_THREADS` setting.
///
/// Each restart's result is polished with the configured
/// [`LocalSearch`] before scoring, mirroring the
/// [`Hybrid`](crate::Hybrid) pipeline's construction + refinement
/// split.
///
/// # Example
///
/// ```
/// use dwm_graph::generators::clustered_graph;
/// use dwm_core::{MultiStart, SimulatedAnnealing, PlacementAlgorithm};
///
/// let g = clustered_graph(20, 4, 0.85, 0.1, 6, 3);
/// let multi = MultiStart::new(4, 11).place(&g);
/// let single = SimulatedAnnealing::new(11).place(&g);
/// assert!(g.arrangement_cost(multi.offsets()) <= g.arrangement_cost(single.offsets()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiStart {
    /// Number of independent restarts.
    pub starts: usize,
    /// Base seed; restart `i` uses `seed + i`.
    pub seed: u64,
    /// Annealer template every restart runs (its `seed` is replaced).
    pub annealer: SimulatedAnnealing,
    /// Refiner applied to every restart's result before scoring.
    pub refiner: LocalSearch,
}

impl MultiStart {
    /// A multi-start annealer with `starts` restarts from `seed`.
    pub fn new(starts: usize, seed: u64) -> Self {
        MultiStart {
            starts: starts.max(1),
            seed,
            annealer: SimulatedAnnealing::new(seed),
            refiner: LocalSearch::default(),
        }
    }

    /// Replaces the annealer template (e.g. to shrink the iteration
    /// budget per restart).
    pub fn with_annealer(mut self, annealer: SimulatedAnnealing) -> Self {
        self.annealer = annealer;
        self
    }
}

impl PlacementAlgorithm for MultiStart {
    fn name(&self) -> String {
        format!("multi-start({})", self.starts)
    }

    fn place(&self, graph: &AccessGraph) -> Placement {
        // Freeze once and compute the (seed-independent) ChainGrowth
        // start once; every restart shares both.
        let n = graph.num_items();
        let csr = CsrGraph::freeze(graph);
        let start = if n < 2 {
            Placement::identity(n)
        } else {
            ChainGrowth.place(graph)
        };
        let seeds: Vec<u64> = (0..self.starts as u64).map(|i| self.seed + i).collect();
        let scored = par::par_map(&seeds, |&restart_seed| {
            let mut annealer = self.annealer;
            annealer.seed = restart_seed;
            let mut p = annealer.place_frozen(&csr, start.clone());
            self.refiner.refine_frozen(&csr, &mut p);
            (csr.arrangement_cost(p.offsets()), p)
        });
        scored
            .into_iter()
            .min_by_key(|(cost, _)| *cost)
            .expect("at least one restart")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::test_support::{kernel_graph, PAR_TEST_LOCK};
    use dwm_foundation::par::override_threads;
    use dwm_graph::generators::{clustered_graph, random_graph};

    #[test]
    fn never_worse_than_any_single_restart() {
        let g = clustered_graph(24, 4, 0.9, 0.05, 8, 2);
        let multi = MultiStart::new(4, 42);
        let best = g.arrangement_cost(multi.place(&g).offsets());
        for i in 0..4 {
            let mut p = SimulatedAnnealing::new(42 + i).place(&g);
            LocalSearch::default().refine(&g, &mut p);
            assert!(best <= g.arrangement_cost(p.offsets()), "restart {i}");
        }
    }

    #[test]
    fn identical_placement_at_any_worker_count() {
        let _l = PAR_TEST_LOCK.lock().unwrap();
        let g = random_graph(18, 0.4, 6, 9);
        let multi = MultiStart::new(6, 5);
        let sequential = {
            let _g = override_threads(1);
            multi.place(&g)
        };
        let parallel = {
            let _g = override_threads(8);
            multi.place(&g)
        };
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn produces_valid_permutation() {
        let g = kernel_graph();
        let p = MultiStart::new(3, 1).place(&g);
        let mut seen = vec![false; g.num_items()];
        for off in 0..g.num_items() {
            let item = p.item_at(off);
            assert!(!seen[item]);
            seen[item] = true;
        }
    }

    #[test]
    fn zero_starts_clamps_to_one() {
        let m = MultiStart::new(0, 3);
        assert_eq!(m.starts, 1);
        assert_eq!(m.name(), "multi-start(1)");
    }
}
