//! Experiment: track-topology sweep — shifts, energy, and wear per
//! kernel under all four geometries.
//!
//! The same hybrid placement (the solver optimizes adjacency, which is
//! geometry-agnostic) is replayed through the single-port
//! [`TopologyCost`] for each topology, so the table isolates what the
//! *geometry* buys or costs on an identical data layout:
//!
//! - `linear` is the paper's model and the baseline row per kernel.
//! - `ring` can only shorten distances (wraparound offers a second
//!   direction for every move), so its shifts are ≤ linear everywhere.
//! - `grid2d` folds the tape into rows of 8; row hops cost 2x a column
//!   hop, so whether it wins depends on the kernel's stride pattern.
//! - `pirm` quantizes to 4-word transverse windows (intra-window moves
//!   are free) but pays a 1.5x per-step energy/wear weight.
//!
//! Energy goes through [`CostProjection::with_topology`] on a device
//! sized to the kernel; wear is shift steps scaled by the topology's
//! wear weight. `--small` restricts to kernels with ≤ 64 items (the CI
//! smoke corpus); `--csv` emits machine-readable rows.

use dwm_core::{CostModel, Hybrid, PlacementAlgorithm, TopologyCost};
use dwm_device::{CostProjection, DeviceConfig, Topology, TrackTopology};
use dwm_experiments::{workload_suite, Table};
use dwm_graph::AccessGraph;

/// The four geometries swept per kernel; the grid folds `n` words into
/// rows of 8 (the smallest grid of 8-word rows that holds the track).
fn topologies(n: usize) -> Vec<Topology> {
    let cols = n.div_ceil(8).max(1);
    vec![
        Topology::linear(),
        Topology::parse("ring").expect("valid spec"),
        Topology::parse(&format!("grid2d:8x{cols}")).expect("valid spec"),
        Topology::parse("pirm:4").expect("valid spec"),
    ]
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    println!("Topology sweep: shifts / energy / wear per kernel (hybrid placement, 1 port)\n");
    let mut t = Table::new([
        "benchmark",
        "topology",
        "shifts",
        "vs linear",
        "energy (nJ)",
        "wear (units)",
    ]);
    for (name, trace) in workload_suite() {
        let graph = AccessGraph::from_trace(&trace);
        let n = graph.num_items();
        if small && n > 64 {
            continue;
        }
        let placement = Hybrid::default().place(&graph);
        let config = DeviceConfig::builder()
            .domains_per_track(n.next_power_of_two().max(64))
            .tracks_per_dbc(32)
            .build()
            .expect("valid device config");
        let mut linear_shifts = 0u64;
        for topology in topologies(n) {
            let model = TopologyCost::single_port(topology, n);
            let stats = model.trace_cost(&placement, &trace).stats;
            if topology.is_linear() {
                linear_shifts = stats.shifts;
            }
            let energy = CostProjection::with_topology(&config, &topology)
                .energy(&stats)
                .total_nj();
            t.row([
                name.clone(),
                topology.canonical(),
                stats.shifts.to_string(),
                format!(
                    "{:+.1}%",
                    100.0 * (stats.shifts as f64 - linear_shifts as f64)
                        / linear_shifts.max(1) as f64
                ),
                format!("{energy:.1}"),
                format!("{:.0}", topology.wear_units(&stats)),
            ]);
        }
    }
    t.print();
    println!(
        "\n(same placement everywhere: ring wraparound only shortens distances, the grid \
         trades row hops at 2x a column hop, and pirm's free intra-window moves pay a \
         1.5x transverse energy/wear weight)"
    );
}
